"""Graph partitioner: shard a LaunchGraph across devices, comm explicit.

The paper's stated future work is multi-GPU scaling; before PR 3 the
reproduction modeled it with a closed-form formula in
:mod:`repro.sim.scaling` that never touched the launch graph, so the
graph engine and the scaling model could silently diverge.  This module
makes multi-device execution a first-class axis of the stage-graph
engine instead: :func:`partition_graph` takes any replayable square
:class:`~repro.sim.graph.LaunchGraph` and shards it **tile-row-wise**
across ``g`` devices, producing a graph in the same IR whose nodes carry
a ``device`` assignment and whose inter-device data movement is explicit
:data:`~repro.sim.graph.COMM_KINDS` nodes priced by the
:class:`~repro.sim.costmodel.LinkSpec` cost model:

* the panel chain of each sweep (GEQRT + UNMQR + (F)TSQRT) stays on the
  sweep's owner device (it is the serial critical path; ownership
  rotates ``k % g`` like a block-cyclic panel distribution);
* every fused trailing update is split into per-device row chunks, one
  per contiguous shard of the sweep's active tile rows.  The chunks are
  modeled as concurrent (each device applies the received panel to its
  shard; the tile-level chain through the pivot row pipelines across the
  column grid), while numeric replay runs them in row order so results
  stay bitwise identical to the single-device run;
* a ``panel_bcast`` node per sweep ships the factored panel (reflector
  tiles + taus) to the peers over a ``ceil(log2 g)``-hop tree;
* a ``boundary_x`` node per sweep hands the updated panel column of the
  *next* sweep to its owner (the shard boundary exchange);
* one ``band_gather`` node collects the reduced band onto device 0,
  where stages 2-3 run single-device (the paper defers their
  distribution).

``partition_graph(graph, 1)`` is a structural no-op: it returns the very
same graph object, with zero comm nodes - so single-device pricing is
reproduced exactly.

:func:`price_partitioned` prices a partitioned graph into the familiar
:class:`~repro.sim.schedule.TimeBreakdown`: serial stages accumulate in
node order (float-identical to the single-device accounting), the update
stage charges the per-sweep maximum over devices (the concurrent-shard
critical path), and communication is reported as its own ``comm_s``
component.  :func:`check_shard_capacity` is the multi-device analogue of
``Backend.check_capacity``: each device must hold its tile-row shard
plus a panel copy.

Batched graphs partition at *problem* granularity instead: problems are
independent, so every aggregate launch splits into per-device launches
over round-robin problem subsets, chains carry no cross-device
dependencies, and a single ``batch_gather`` comm node collecting the
results to device 0 is the only communication.  Pricing is
device-concurrent (each stage charges its maximum over devices).

Cluster topologies (``nodes > 1``) extend the same partition across a
two-tier :class:`~repro.sim.costmodel.FabricSpec`: device ranks are
global over ``nodes x gpus`` (``node_of(d) = d // gpus_per_node``), every
shared volume splits into the fraction held by same-node peers (priced
on the intra tier) and the fraction held across hosts (priced on the
inter tier, as a ``*_inter`` comm kind), and panel broadcasts become a
two-stage tree - an inter-node hop tree over ``ceil(log2 nodes)`` stages
followed by the node-local tree.  ``nodes=1`` reproduces the
single-node partition byte for byte.

Heterogeneous fleets (a :class:`~repro.sim.topology.Topology` naming
mixed device types) take the **cost-weighted** path: each device's shard
of a sweep's tile rows is proportional to its predicted trailing-update
throughput (:func:`~repro.sim.costmodel.update_rate` - the same
cost-model arithmetic the analytic executors charge), rounded by
:func:`shard_rows_weighted`'s largest-remainder rule so every device's
row count stays within one row of its exact quota.  The weighted sharder
returns an explicit per-device assignment (possibly empty) and the
partitioner skips broadcast hops to shard-less devices, so the
``ngpu > tile rows`` degenerate case no longer ships panels to devices
with no rows to apply.  A *uniform* topology routes through the exact
legacy code path (``Topology.uniform(dev, g)`` graphs are byte-identical
to ``ngpu=g`` graphs), and weighted chunks stay contiguous and ascending
within each sweep, so numeric replay remains bitwise identical to the
monolithic driver.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..errors import CapacityError, ShapeError
from .costmodel import FabricSpec, LinkSpec, update_rate
from .graph import (
    LaunchGraph,
    LaunchNode,
    node_overhead_s,
    price_node,
    problem_range,
    rekey_batched,
)
from .schedule import TimeBreakdown
from .topology import Topology, require_no_conflicts
from .tracing import Stage

__all__ = [
    "check_fleet_capacity",
    "check_shard_capacity",
    "fleet_scale",
    "fleet_weights",
    "partition_graph",
    "price_partitioned",
    "price_partitioned_scalar",
    "shard_rows",
    "shard_rows_weighted",
]

#: Stage-1 kinds that run on the sweep owner's device (serial chain).
_PANEL_CHAIN_KINDS = ("geqrt", "ftsqrt", "tsqrt")


def shard_rows(lo: int, hi: int, ngpu: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced shards of the tile-row range ``[lo, hi)``.

    Returns at most ``ngpu`` non-empty ``(start, stop)`` chunks; when the
    range has fewer rows than devices, the surplus devices simply receive
    no shard (the ``ngpu >= tile rows`` degenerate case).
    """
    rows = hi - lo
    if rows <= 0:
        return []
    parts = min(ngpu, rows)
    base, extra = divmod(rows, parts)
    chunks = []
    start = lo
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def shard_rows_weighted(
    lo: int,
    hi: int,
    weights,
) -> List[Tuple[int, int]]:
    """Contiguous shards of ``[lo, hi)`` proportional to ``weights``.

    Largest-remainder rounding: device ``d`` receives ``floor(rows *
    w_d / W)`` rows plus at most one remainder row, remainder rows
    granted in order of descending fractional part (ties broken by lower
    device index).  Returns exactly ``len(weights)`` contiguous,
    ascending ``(start, stop)`` chunks - *possibly empty* (``start ==
    stop``), the explicit per-device assignment the comm planner needs
    for the ``ngpu > rows`` degenerate case - that cover ``[lo, hi)``
    with no gap or overlap.  Every device's row count is within one row
    of its exact quota ``rows * w_d / W``, and equal weights reproduce
    :func:`shard_rows`' boundaries exactly (padded with empty trailing
    chunks when devices outnumber rows).
    """
    if not weights:
        raise ShapeError("need at least one device weight")
    if any(w <= 0 for w in weights):
        raise ShapeError(
            f"device weights must be positive throughputs, got {weights}"
        )
    rows = hi - lo
    nparts = len(weights)
    if rows <= 0:
        return [(lo, lo)] * nparts
    total_w = float(sum(weights))
    quotas = [rows * float(w) / total_w for w in weights]
    counts = [int(q) for q in quotas]
    short = rows - sum(counts)
    # grant the remainder rows by descending fractional part, ties by
    # lower device index (sort is stable, so sorting on -frac suffices)
    order = sorted(range(nparts), key=lambda d: -(quotas[d] - counts[d]))
    for d in order[:short]:
        counts[d] += 1
    chunks = []
    start = lo
    for count in counts:
        chunks.append((start, start + count))
        start += count
    return chunks


def fleet_weights(topology: Topology, config) -> Tuple[float, ...]:
    """Per-rank cost-model throughput weights of a fleet.

    Each device's weight is its predicted trailing-update throughput in
    tile rows per second (:func:`~repro.sim.costmodel.update_rate`,
    priced with the handle's kernel parameters and precisions) - the
    quantity :func:`shard_rows_weighted` makes shard sizes proportional
    to.  Raises :class:`~repro.errors.UnsupportedBackendError` when a
    fleet member does not support the configured storage precision.
    """
    from ..backends.backend import resolve_backend

    storage = config.require_precision("fleet partitioning")
    rates = []
    for name in topology.devices:
        be = resolve_backend(name)
        compute = be.compute_precision(storage)
        rates.append(
            update_rate(be.device, config.params, storage, compute,
                        config.coeffs)
        )
    return tuple(rates)


def fleet_scale(topology: Topology, config) -> Tuple[float, ...]:
    """Per-rank compute-duration scale factors relative to the handle.

    The node table prices every launch against the handle's single
    backend; a fleet rank running ``scale_d`` times slower than that
    reference multiplies its compute durations by ``scale_d =
    ref_rate / rate_d`` in the event simulation.  Always derived from
    the *real* device rates (never from overridden shard weights), so
    mis-sharded fleets are priced honestly.
    """
    be = config.backend
    storage = config.require_precision("fleet pricing")
    ref = update_rate(be.device, config.params, storage,
                      be.compute_precision(storage), config.coeffs)
    return tuple(ref / r for r in fleet_weights(topology, config))


def check_shard_capacity(n: int, config, ngpu: int, nodes: int = 1) -> None:
    """Raise :class:`CapacityError` if a shard exceeds per-device memory.

    Each device of a tile-row partition holds its shard of the padded
    matrix (``ceil(nbt / g)`` tile rows x ``npad`` columns, ``g`` the
    total device count ``nodes * ngpu``) plus one panel copy
    (``npad x ts``, the broadcast landing buffer), with the same 1.25
    working-set factor the single-device capacity model uses.
    ``nodes=1, ngpu=1`` delegates to ``Backend.check_capacity`` exactly.
    """
    from ..core.tiling import ntiles

    storage = config.require_precision("multi-GPU prediction")
    total = nodes * ngpu
    if total == 1:
        config.backend.check_capacity(n, storage)
        return
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    shard_rows_n = math.ceil(nbt / total) * ts
    shard_bytes = (shard_rows_n * npad + npad * ts) * storage.sizeof * 1.25
    spec = config.backend.device
    if shard_bytes > spec.mem_bytes:
        topo = (
            f"{nodes} nodes x {ngpu} devices" if nodes > 1
            else f"{ngpu} devices"
        )
        raise CapacityError(
            f"{n}x{n} {storage.name} matrix sharded over {topo} "
            f"needs {shard_bytes / 2**30:.1f} GiB per device; "
            f"{config.backend.name} has {spec.mem_gb} GiB "
            f"(use more devices or a smaller matrix)"
        )


def check_fleet_capacity(
    n: int,
    config,
    topology: Topology,
    weights: Optional[Tuple[float, ...]] = None,
) -> None:
    """Raise :class:`CapacityError` if a rank's shard exceeds its memory.

    The fleet analogue of :func:`check_shard_capacity`: every rank's
    weighted tile-row quota (rounded up) plus one panel copy must fit
    that rank's *own* device memory - a weighted partition deliberately
    loads the fast devices heavier, so the uniform per-device bound does
    not apply.  Uniform fleets of the handle's device delegate to
    :func:`check_shard_capacity` exactly.
    """
    from ..core.tiling import ntiles

    storage = config.require_precision("fleet prediction")
    total = topology.ngpu
    if topology.is_uniform and topology.device == config.backend.device.name:
        check_shard_capacity(n, config, topology.per_node,
                             nodes=topology.nodes)
        return
    if weights is None:
        weights = fleet_weights(topology, config)
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    total_w = float(sum(weights))
    for rank, (spec, w) in enumerate(zip(topology.specs(), weights)):
        shard_rows_n = math.ceil(nbt * float(w) / total_w) * ts
        shard_bytes = (shard_rows_n * npad + npad * ts) * storage.sizeof * 1.25
        if shard_bytes > spec.mem_bytes:
            raise CapacityError(
                f"{n}x{n} {storage.name} matrix sharded over {topology!r} "
                f"needs {shard_bytes / 2**30:.1f} GiB on rank {rank} "
                f"({spec.name}, {spec.mem_gb} GiB) "
                f"(use more devices or a smaller matrix)"
            )


def partition_graph(
    graph: LaunchGraph,
    ngpu: Optional[int] = None,
    link: Optional[LinkSpec] = None,
    *,
    nodes: Optional[int] = None,
    fabric: Optional[FabricSpec] = None,
    topology: Optional[Topology] = None,
    config=None,
    weights: Optional[Tuple[float, ...]] = None,
) -> LaunchGraph:
    """Shard a replayable square launch graph across a device fleet.

    Returns a new :class:`LaunchGraph` with ``ngpu`` set to the *total*
    device count, per-node ``device`` assignments, per-device row-chunked
    update launches and explicit comm nodes priced against ``link``
    (single node) or the two tiers of ``fabric`` (cluster).

    The fleet is named either by the legacy ``ngpu``/``nodes`` pair
    (identical devices, balanced :func:`shard_rows` shards) or by a
    ``topology=`` (mutually exclusive - passing both raises naming the
    conflicting axes).  A uniform topology routes through the exact
    legacy path; a heterogeneous one (or any explicit ``weights=``)
    shards every sweep with :func:`shard_rows_weighted` so each rank's
    rows are proportional to its cost-model throughput
    (:func:`fleet_weights`, derived from ``config=`` when ``weights`` is
    omitted) and trims broadcast hops to shard-less ranks.  ``config=``
    also resolves ``link``/``fabric`` from the topology's bandwidth
    overrides when the specs are not passed explicitly.

    A single-device fleet returns ``graph`` itself, untouched
    (structural no-op).  Counted graphs cannot be partitioned (their
    folded nodes carry no tile metadata); multi-stream graphs can - the
    column chunks of the lookahead variant compose with the row chunks
    of the device shards.
    """
    if topology is not None:
        require_no_conflicts(topology, ngpu=ngpu, nodes=nodes)
        nodes = topology.nodes
        ngpu = topology.per_node
        hetero = not topology.is_uniform or weights is not None
        if hetero and weights is None:
            if config is None:
                raise ValueError(
                    "heterogeneous topologies need config= (or explicit "
                    "weights=) to derive cost-model shard weights"
                )
            weights = fleet_weights(topology, config)
        if config is not None:
            if nodes > 1 and fabric is None:
                fabric = config.fabric_spec(topology.link_gbs,
                                            topology.fabric_gbs)
            elif nodes == 1 and link is None:
                link = config.link_spec(topology.link_gbs)
    else:
        if weights is not None:
            raise ValueError(
                "weights= requires a topology= naming the fleet ranks"
            )
        if ngpu is None:
            raise ShapeError("need a device count (ngpu=) or a topology=")
        nodes = 1 if nodes is None else nodes
    if ngpu < 1:
        raise ShapeError(f"need at least one device, got {ngpu}")
    if nodes < 1:
        raise ShapeError(f"need at least one node, got {nodes}")
    total = nodes * ngpu
    if weights is not None and len(weights) != total:
        raise ShapeError(
            f"{len(weights)} weights for a fleet of {total} devices"
        )
    if total == 1:
        return graph
    if graph.counted:
        raise ValueError(
            "counted graphs fold launch runs without tile metadata and "
            "cannot be partitioned; emit with counted=False"
        )
    if graph.out_of_core:
        raise ValueError(
            "graph rewriters compose in a fixed order: partition_graph "
            "first, then rewrite_out_of_core - this graph is already "
            "rewritten out-of-core"
        )
    if nodes > 1:
        if fabric is None:
            raise ValueError(
                "partitioning across nodes requires a FabricSpec "
                "(intra-node link + inter-node fabric)"
            )
        intra = fabric.intra
        inter: Optional[LinkSpec] = fabric.inter
    else:
        if link is None:
            raise ValueError("partitioning across devices requires a LinkSpec")
        intra = link
        inter = None
    if graph.kind == "batched":
        return _partition_batched(graph, ngpu, intra, nodes=nodes,
                                  inter=inter, weights=weights)
    if graph.kind == "lowrank":
        return _partition_lowrank(graph, ngpu, intra, nodes=nodes,
                                  inter=inter, weights=weights)
    if graph.kind != "square":
        raise ValueError(
            f"only square, batched and lowrank solve graphs can be "
            f"partitioned, got {graph.kind!r}"
        )

    ts, nbt, npad = graph.ts, graph.nbt, graph.npad
    bw, lat = intra.bandwidth_gbs, intra.latency_us
    gpn = ngpu  # devices per node; `total` devices overall
    intra_hops = max(1, math.ceil(math.log2(gpn))) if gpn > 1 else 1
    inter_hops = max(1, math.ceil(math.log2(nodes))) if nodes > 1 else 1
    # fractions of a shared volume held by same-node peers vs other nodes
    remote = (gpn - 1) / total
    remote_x = (total - gpn) / total

    src_nodes = graph.nodes
    new_nodes: List[LaunchNode] = []
    #: old node index -> indices of its partitioned replacements
    mapped: List[Tuple[int, ...]] = []
    bcast_idx: Dict[int, int] = {}  # sweep -> panel_bcast node index
    band_gathered = False

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    def mdeps(node: LaunchNode) -> Tuple[int, ...]:
        seen: List[int] = []
        for d in node.deps:
            for m in mapped[d]:
                if m not in seen:
                    seen.append(m)
        return tuple(seen)

    def comm(kind: str, elems: int, hops: int, deps, device: int) -> int:
        return add(
            LaunchNode(
                kind,
                Stage.COMM,
                ("comm", int(elems), hops, bw, lat),
                deps=tuple(deps),
                device=device,
            )
        )

    def comm_inter(kind: str, elems: int, hops: int, deps,
                   device: int) -> int:
        return add(
            LaunchNode(
                kind + "_inter",
                Stage.COMM,
                ("comm", int(elems), hops,
                 inter.bandwidth_gbs, inter.latency_us),
                deps=tuple(deps),
                device=device,
            )
        )

    def exchange(kind: str, elems_of, hops: int, deps,
                 device: int) -> Tuple[int, ...]:
        """Tiered gather/exchange: intra share + inter share, as needed.

        ``elems_of(fraction)`` prices the payload held by that fraction
        of the peers - called once per tier so the single-node partition
        keeps its exact element counts.
        """
        out: List[int] = []
        if gpn > 1:
            out.append(comm(kind, elems_of(remote), hops, deps, device))
        if inter is not None:
            out.append(comm_inter(kind, elems_of(remote_x), hops, deps,
                                  device))
        return tuple(out)

    def sweep_chunks(lo: int, hi: int, owner: int) -> List[Tuple[int, int, int]]:
        """Per-device ``(device, start, stop)`` chunks of a sweep's rows.

        The uniform path keeps :func:`shard_rows`' balanced chunks; the
        weighted path rotates the weight vector so the owner's rank
        receives the first chunk (preserving the legacy block-cyclic
        structure at equal weights) and drops empty assignments.
        """
        if weights is None:
            return [
                ((owner + ci) % total, a, b)
                for ci, (a, b) in enumerate(shard_rows(lo, hi, total))
            ]
        rot = [weights[(owner + i) % total] for i in range(total)]
        return [
            ((owner + ci) % total, a, b)
            for ci, (a, b) in enumerate(shard_rows_weighted(lo, hi, rot))
            if b > a
        ]

    def bcast(elems: int, deps, device: int,
              peers: Optional[set] = None) -> int:
        """Tiered broadcast tree: inter-node stage feeds the local trees.

        ``peers`` (weighted path only) is the set of devices holding a
        shard of the sweep; hops to shard-less devices are trimmed, and
        when no other device holds a shard the broadcast is skipped
        entirely (returns ``-1``).
        """
        if peers is not None:
            if not any(p != device for p in peers):
                return -1
            per_node: Dict[int, int] = {}
            for p in peers:
                per_node[p // gpn] = per_node.get(p // gpn, 0) + 1
            active_nodes = len(per_node)
            max_local = max(per_node.values())
            last = -1
            if inter is not None and active_nodes > 1:
                hops = max(1, math.ceil(math.log2(active_nodes)))
                last = comm_inter("panel_bcast", elems, hops, deps, device)
                deps = (last,)
            if max_local > 1:
                hops = max(1, math.ceil(math.log2(max_local)))
                last = comm("panel_bcast", elems, hops, deps, device)
            return last
        last = -1
        if inter is not None:
            last = comm_inter("panel_bcast", elems, inter_hops, deps, device)
            deps = (last,)
        if gpn > 1:
            last = comm("panel_bcast", elems, intra_hops, deps, device)
        return last

    def shard_peers(lo: int, hi: int, owner: int) -> Optional[set]:
        """Active devices of a sweep (weighted path), or ``None`` (legacy)."""
        if weights is None:
            return None
        return {dev for dev, _a, _b in sweep_chunks(lo, hi, owner)} | {owner}

    for node in src_nodes:
        kind = node.kind
        deps = mdeps(node)
        if kind == "geqrt":
            lq, row0, k, sweep = node.meta
            owner = k % total
            if deps:
                # shard boundary exchange: the new panel column was
                # updated on every device; its owner gathers the remote
                # tiles before factoring, tier by tier
                height = nbt - row0
                bx = exchange(
                    "boundary_x",
                    lambda f: math.ceil(height * f) * ts * ts,
                    1, deps, owner,
                )
                deps = (*deps, *bx)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=owner)
            )
            r = nbt - row0 - 1
            if not graph.fused and r > 0:
                # unfused sweeps pipeline per-row TSQRT outputs; model the
                # panel shipment as one broadcast issued with the chain
                elems = (r + 1) * (ts * ts + ts)
                b = bcast(elems, (i,), owner,
                          shard_peers(row0 + 1, nbt, owner))
                if b >= 0:
                    bcast_idx[sweep] = b
        elif kind == "ftsqrt":
            lq, row0, k, rows, sweep = node.meta
            owner = k % total
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=owner)
            )
            r = rows[1] - rows[0]
            elems = (r + 1) * (ts * ts + ts)
            b = bcast(elems, (i,), owner,
                      shard_peers(rows[0], rows[1], owner))
            if b >= 0:
                bcast_idx[sweep] = b
        elif kind == "tsqrt":
            lq, row0, k, l, sweep = node.meta
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=k % total)
            )
        elif kind == "unmqr":
            lq, row0, k, c0t, off, cw, sweep = node.meta
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=k % total)
            )
        elif kind == "tsmqr":
            lq, row0, k, l, c0t, off, cw, sweep = node.meta
            owner = k % total
            dev = owner
            for cdev, a, b in sweep_chunks(row0 + 1, nbt, owner):
                if a <= l < b:
                    dev = cdev
                    break
            bc = bcast_idx.get(sweep)
            if dev != owner and bc is not None:
                deps = (*deps, bc)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=dev)
            )
        elif kind == "ftsmqr":
            lq, row0, k, rows, c0t, off, cw, sweep = node.meta
            owner = k % total
            bc = bcast_idx.get(sweep)
            parts: List[int] = []
            for dev, a, b in sweep_chunks(rows[0], rows[1], owner):
                cdeps = deps
                if dev != owner and bc is not None:
                    cdeps = (*deps, bc)
                parts.append(
                    add(
                        LaunchNode(
                            kind,
                            node.stage,
                            ("update", cw, b - a, True),
                            (lq, row0, k, (a, b), c0t, off, cw, sweep),
                            cdeps,
                            device=dev,
                        )
                    )
                )
            mapped.append(tuple(parts))
            continue
        elif kind == "brd_chase":
            if not band_gathered:
                band_gathered = True
                g = exchange(
                    "band_gather",
                    lambda f: math.ceil(npad * (ts + 1) * f),
                    1, deps, 0,
                )
                deps = (*deps, *g)
            i = add(
                LaunchNode(
                    kind, node.stage, node.key, node.meta, deps,
                    primary=node.primary, device=0,
                )
            )
        else:  # bdsqr_cpu (and any future single-device tail)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           primary=node.primary, device=0)
            )
        mapped.append((i,))

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=total,
        nnodes=nodes,
    )


def _partition_lowrank(
    graph: LaunchGraph,
    ngpu: int,
    link: LinkSpec,
    nodes: int = 1,
    inter: Optional[LinkSpec] = None,
    weights: Optional[Tuple[float, ...]] = None,
) -> LaunchGraph:
    """Shard a low-rank launch graph's sketch GEMMs across the devices.

    The randomized workload's parallel work is its two ``O(m n l)``
    GEMMs against the full input; everything downstream operates on the
    ``l``-wide sample and stays on device 0 (the paper's single-device
    tail, like stages 2-3 of the square partition).  Each GEMM splits
    into per-device row chunks over the ``A``-row axis its emitter meta
    names (:func:`shard_rows`, or :func:`shard_rows_weighted` for a
    heterogeneous fleet - the two GEMMs stream the same ``m`` rows, so
    every device's chunks align and the projection GEMM depends on the
    *same device's* sample chunk, not on the gather).  Every non-root
    chunk ships its product to device 0 as an explicit ``sketch_gather``
    node (``sketch_gather_inter`` across hosts): the sample GEMM sends
    its ``rows x l`` output block, the projection GEMM its full
    ``n x l`` partial sum.
    """
    total = nodes * ngpu
    gpn = ngpu
    bw, lat = link.bandwidth_gbs, link.latency_us
    new_nodes: List[LaunchNode] = []
    #: old node index -> indices of its partitioned replacements
    mapped: List[Tuple[int, ...]] = []
    #: old gemm index -> device -> its chunk's new index
    gemm_chunks: Dict[int, Dict[int, int]] = {}

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    for oi, node in enumerate(graph.nodes):
        if node.kind == "gemm":
            tag, axis, sweep = node.meta
            rows = node.key[axis]
            width = node.key[3]
            if weights is None:
                chunks = list(enumerate(shard_rows(0, rows, total)))
            else:
                chunks = [
                    (d, (a, b))
                    for d, (a, b) in enumerate(
                        shard_rows_weighted(0, rows, weights)
                    )
                    if b > a
                ]
            parts: List[int] = []
            per_dev: Dict[int, int] = {}
            for dev, (a, b) in chunks:
                cdeps: Tuple[int, ...] = ()
                for dep in node.deps:
                    prev = gemm_chunks.get(dep)
                    if prev is not None and dev in prev:
                        cdeps = (*cdeps, prev[dev])
                    else:
                        cdeps = (*cdeps, *mapped[dep])
                key = list(node.key)
                key[axis] = b - a
                i = add(
                    LaunchNode(
                        "gemm", node.stage, tuple(key), (tag, axis, sweep),
                        cdeps, device=dev,
                    )
                )
                per_dev[dev] = i
                if dev == 0:
                    parts.append(i)
                    continue
                # ship the chunk's product to the root: the sample GEMM's
                # output rows, or the projection GEMM's full partial sum
                elems = ((b - a) if axis == 1 else node.key[1]) * width
                if inter is not None and dev // gpn != 0:
                    kind = "sketch_gather_inter"
                    cbw, clat = inter.bandwidth_gbs, inter.latency_us
                else:
                    kind, cbw, clat = "sketch_gather", bw, lat
                parts.append(
                    add(
                        LaunchNode(
                            kind, Stage.COMM,
                            ("comm", int(elems), 1, cbw, clat),
                            deps=(i,), device=0,
                        )
                    )
                )
            gemm_chunks[oi] = per_dev
            mapped.append(tuple(parts))
            continue
        seen: List[int] = []
        for dep in node.deps:
            for mi in mapped[dep]:
                if mi not in seen:
                    seen.append(mi)
        mapped.append((add(
            LaunchNode(node.kind, node.stage, node.key, node.meta,
                       tuple(seen), primary=node.primary, device=0)
        ),))

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=graph.npad,
        ts=graph.ts,
        nbt=graph.nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=total,
        nnodes=nodes,
    )


def _partition_batched(
    graph: LaunchGraph,
    ngpu: int,
    link: LinkSpec,
    nodes: int = 1,
    inter: Optional[LinkSpec] = None,
    weights: Optional[Tuple[float, ...]] = None,
) -> LaunchGraph:
    """Shard a batched launch graph round-robin across the devices.

    Problems are independent, so the partition is embarrassingly simple:
    every aggregate launch splits into per-device launches covering that
    device's round-robin problem subset (device ``d`` of a node covering
    ``range(start, stop, step)`` takes ``range(start + d*step, stop,
    step*g)``, ``g`` the total device count), chains stay serial
    *within* a device and carry no cross-device dependencies, and
    communication is the gather of the non-root devices' singular values
    to device 0 - the only inter-device movement a batch needs.  On one
    node that is a single ``batch_gather``; on a cluster each source
    device ships its results separately (``batch_gather`` from device
    0's node-local peers, ``batch_gather_inter`` from every other node -
    the concurrent arrivals that queue on node 0's fabric lane in the
    event simulation).  Devices left without problems (``g > batch``)
    receive no nodes.

    With ``weights`` (heterogeneous fleet), each aggregate range splits
    into *contiguous* per-device problem runs sized by
    :func:`shard_rows_weighted` instead of round-robin strides, so fast
    devices solve proportionally more problems; empty assignments are
    skipped just like the surplus-device case.
    """
    total = nodes * ngpu
    gpn = ngpu
    bw, lat = link.bandwidth_gbs, link.latency_us
    new_nodes: List[LaunchNode] = []
    #: old node index -> device -> replacement index
    mapped: List[Dict[int, int]] = []
    solve_tails: List[int] = []
    #: device -> (tail index, problem count) for the per-source gathers
    tail_of: Dict[int, Tuple[int, int]] = {}
    remote_problems = 0

    for node in graph.nodes:
        probs = node.meta[0]
        start, stop, step = probs[1], probs[2], probs[3]
        old_count = len(problem_range(probs))
        per: Dict[int, int] = {}
        if weights is None:
            assignments = [
                ("b", start + d * step, stop, step * total)
                for d in range(total)
            ]
        else:
            assignments = [
                ("b", start + clo * step, start + chi * step, step)
                for clo, chi in shard_rows_weighted(0, old_count, weights)
            ]
        for d, dprobs in enumerate(assignments):
            bcount = len(problem_range(dprobs))
            if bcount == 0:
                continue
            deps = tuple(
                mapped[dep][d] for dep in node.deps if d in mapped[dep]
            )
            new_nodes.append(
                LaunchNode(
                    node.kind,
                    node.stage,
                    rekey_batched(node.key, old_count, bcount),
                    (dprobs,) + node.meta[1:],
                    deps,
                    primary=node.primary,
                    device=d,
                )
            )
            per[d] = len(new_nodes) - 1
            if node.kind == "bdsqr_cpu_b":
                solve_tails.append(per[d])
                tail_of[d] = (per[d], bcount)
                if d != 0:
                    remote_problems += bcount
        mapped.append(per)

    if nodes == 1:
        # one gather of the non-root devices' results (n values per problem)
        new_nodes.append(
            LaunchNode(
                "batch_gather",
                Stage.COMM,
                ("comm", remote_problems * graph.n, 1, bw, lat),
                deps=tuple(solve_tails),
                device=0,
            )
        )
    else:
        # per-source gathers, rooted at the destination (device 0): the
        # receiving link / fabric lane serializes concurrent arrivals in
        # the event simulation
        for d in sorted(tail_of):
            if d == 0:
                continue
            tail, bcount = tail_of[d]
            if d // gpn == 0:
                kind, cbw, clat = "batch_gather", bw, lat
            else:
                kind = "batch_gather_inter"
                cbw, clat = inter.bandwidth_gbs, inter.latency_us
            new_nodes.append(
                LaunchNode(
                    kind,
                    Stage.COMM,
                    ("comm", bcount * graph.n, 1, cbw, clat),
                    deps=(tail,),
                    device=0,
                )
            )

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=graph.npad,
        ts=graph.ts,
        nbt=graph.nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=total,
        nnodes=nodes,
    )


def _price_batched_partitioned(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned batched graph into a :class:`TimeBreakdown`.

    Devices own disjoint problem subsets and share no dependencies until
    the final gather, so every compute stage charges the *maximum* over
    devices of that device's stage time (concurrent devices), transfers
    likewise per device into ``io_s``, and the gather lands in
    ``comm_s``.  Launch counts come from the partitioned graph itself.
    """
    spec = config.backend.device
    compute = config.backend.compute_precision(storage)
    if cache is None:
        cache = {}

    # stage -> device -> accumulated seconds (incl. overheads)
    per_dev: Dict[str, Dict[int, float]] = {}
    comm_s = 0.0
    comm_intra = 0.0
    comm_inter = 0.0
    launches: Dict[str, int] = {}
    flops = 0.0
    nbytes = 0.0
    for node in graph.nodes:
        cost = price_node(node, config, storage, compute, cache)
        overhead = node_overhead_s(node, spec)
        flops += cost.flops
        nbytes += cost.bytes
        launches[node.kind] = launches.get(node.kind, 0) + node.count
        if node.stage == Stage.COMM:
            comm_s += cost.seconds
            if node.kind.endswith("_inter"):
                comm_inter += cost.seconds
            else:
                comm_intra += cost.seconds
            continue
        stage_devs = per_dev.setdefault(node.stage, {})
        dev = node.device or 0
        stage_devs[dev] = stage_devs.get(dev, 0.0) + cost.seconds + overhead

    def stage_max(stage: str) -> float:
        devs = per_dev.get(stage)
        return max(devs.values()) if devs else 0.0

    return TimeBreakdown(
        n=graph.n,
        panel_s=stage_max(Stage.PANEL),
        update_s=stage_max(Stage.UPDATE),
        brd_s=stage_max(Stage.BRD),
        solve_s=stage_max(Stage.SOLVE),
        comm_s=comm_s,
        io_s=stage_max(Stage.TRANSFER),
        launches=launches,
        flops=flops,
        bytes=nbytes,
        ngpu=graph.ngpu,
        nnodes=graph.nnodes,
        comm_intra_s=comm_intra,
        comm_inter_s=comm_inter,
    )


def price_partitioned(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned graph into a :class:`TimeBreakdown`.

    Array implementation over the graph's struct-of-arrays table: serial
    stages fold in node order, per-sweep device maxima become grouped
    ``np.maximum.reduceat`` reductions.  Float-identical to
    :func:`price_partitioned_scalar`, the per-node reference oracle it is
    pinned against (``tests/test_table_props.py``).
    """
    from .table import price_partitioned_table  # table imports this module

    return price_partitioned_table(graph.table(), config, storage, cache)


def price_partitioned_scalar(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned graph node by node (the reference oracle).

    Serial stages (panel chain, stage 2/3) accumulate in node order with
    the exact accounting of the
    :class:`~repro.sim.graph.AnalyticExecutor`, so their seconds are
    float-identical to the single-device prediction.  The update stage
    charges, per sweep, the maximum over devices of that device's update
    time (concurrent shards; the launch-granularity stand-in for the
    column-pipelined overlap), every comm node lands in ``comm_s``, and
    the host-link transfers of an out-of-core rewritten shard land in
    ``io_s``.  Launch counts come from the partitioned graph itself.
    Partitioned *batched* graphs price device-concurrently instead:
    every stage charges the maximum over devices (devices own disjoint
    problem subsets), with the gather as ``comm_s``.
    """
    if graph.kind == "batched":
        return _price_batched_partitioned(graph, config, storage, cache)
    spec = config.backend.device
    compute = config.backend.compute_precision(storage)
    if cache is None:
        cache = {}

    cost_s: Dict[str, float] = {}
    over_s: Dict[str, float] = {}
    launches: Dict[str, int] = {}
    flops = 0.0
    nbytes = 0.0
    comm_intra = 0.0
    comm_inter = 0.0
    # sweep -> device -> accumulated update seconds (incl. overheads)
    sweep_update: Dict[int, Dict[int, float]] = {}
    sweep_order: List[int] = []

    for node in graph.nodes:
        cost = price_node(node, config, storage, compute, cache)
        overhead = node_overhead_s(node, spec)
        flops += cost.flops
        nbytes += cost.bytes
        launches[node.kind] = launches.get(node.kind, 0) + node.count
        stage = node.stage
        if stage == Stage.COMM:
            if node.kind.endswith("_inter"):
                comm_inter += cost.seconds
            else:
                comm_intra += cost.seconds
        if stage == Stage.UPDATE and graph.ngpu > 1:
            sweep = node.meta[-1]
            per_dev = sweep_update.get(sweep)
            if per_dev is None:
                per_dev = sweep_update[sweep] = {}
                sweep_order.append(sweep)
            dev = node.device or 0
            per_dev[dev] = per_dev.get(dev, 0.0) + cost.seconds + overhead
        else:
            cost_s[stage] = cost_s.get(stage, 0.0) + cost.seconds
            over_s[stage] = over_s.get(stage, 0.0) + overhead

    update_s = cost_s.get(Stage.UPDATE, 0.0) + over_s.get(Stage.UPDATE, 0.0)
    for sweep in sweep_order:
        update_s += max(sweep_update[sweep].values())

    def stage_total(stage: str) -> float:
        return cost_s.get(stage, 0.0) + over_s.get(stage, 0.0)

    return TimeBreakdown(
        n=graph.n,
        panel_s=stage_total(Stage.PANEL),
        update_s=update_s,
        brd_s=stage_total(Stage.BRD),
        solve_s=stage_total(Stage.SOLVE),
        comm_s=stage_total(Stage.COMM),
        io_s=stage_total(Stage.TRANSFER),
        launches=launches,
        flops=flops,
        bytes=nbytes,
        ngpu=graph.ngpu,
        nnodes=graph.nnodes,
        comm_intra_s=comm_intra,
        comm_inter_s=comm_inter,
    )
