"""Graph partitioner: shard a LaunchGraph across devices, comm explicit.

The paper's stated future work is multi-GPU scaling; before PR 3 the
reproduction modeled it with a closed-form formula in
:mod:`repro.sim.scaling` that never touched the launch graph, so the
graph engine and the scaling model could silently diverge.  This module
makes multi-device execution a first-class axis of the stage-graph
engine instead: :func:`partition_graph` takes any replayable square
:class:`~repro.sim.graph.LaunchGraph` and shards it **tile-row-wise**
across ``g`` devices, producing a graph in the same IR whose nodes carry
a ``device`` assignment and whose inter-device data movement is explicit
:data:`~repro.sim.graph.COMM_KINDS` nodes priced by the
:class:`~repro.sim.costmodel.LinkSpec` cost model:

* the panel chain of each sweep (GEQRT + UNMQR + (F)TSQRT) stays on the
  sweep's owner device (it is the serial critical path; ownership
  rotates ``k % g`` like a block-cyclic panel distribution);
* every fused trailing update is split into per-device row chunks, one
  per contiguous shard of the sweep's active tile rows.  The chunks are
  modeled as concurrent (each device applies the received panel to its
  shard; the tile-level chain through the pivot row pipelines across the
  column grid), while numeric replay runs them in row order so results
  stay bitwise identical to the single-device run;
* a ``panel_bcast`` node per sweep ships the factored panel (reflector
  tiles + taus) to the peers over a ``ceil(log2 g)``-hop tree;
* a ``boundary_x`` node per sweep hands the updated panel column of the
  *next* sweep to its owner (the shard boundary exchange);
* one ``band_gather`` node collects the reduced band onto device 0,
  where stages 2-3 run single-device (the paper defers their
  distribution).

``partition_graph(graph, 1)`` is a structural no-op: it returns the very
same graph object, with zero comm nodes - so single-device pricing is
reproduced exactly.

:func:`price_partitioned` prices a partitioned graph into the familiar
:class:`~repro.sim.schedule.TimeBreakdown`: serial stages accumulate in
node order (float-identical to the single-device accounting), the update
stage charges the per-sweep maximum over devices (the concurrent-shard
critical path), and communication is reported as its own ``comm_s``
component.  :func:`check_shard_capacity` is the multi-device analogue of
``Backend.check_capacity``: each device must hold its tile-row shard
plus a panel copy.

Batched graphs partition at *problem* granularity instead: problems are
independent, so every aggregate launch splits into per-device launches
over round-robin problem subsets, chains carry no cross-device
dependencies, and a single ``batch_gather`` comm node collecting the
results to device 0 is the only communication.  Pricing is
device-concurrent (each stage charges its maximum over devices).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..errors import CapacityError, ShapeError
from .costmodel import LinkSpec
from .graph import (
    LaunchGraph,
    LaunchNode,
    node_overhead_s,
    price_node,
    problem_range,
    rekey_batched,
)
from .schedule import TimeBreakdown
from .tracing import Stage

__all__ = [
    "check_shard_capacity",
    "partition_graph",
    "price_partitioned",
    "price_partitioned_scalar",
    "shard_rows",
]

#: Stage-1 kinds that run on the sweep owner's device (serial chain).
_PANEL_CHAIN_KINDS = ("geqrt", "ftsqrt", "tsqrt")


def shard_rows(lo: int, hi: int, ngpu: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced shards of the tile-row range ``[lo, hi)``.

    Returns at most ``ngpu`` non-empty ``(start, stop)`` chunks; when the
    range has fewer rows than devices, the surplus devices simply receive
    no shard (the ``ngpu >= tile rows`` degenerate case).
    """
    rows = hi - lo
    if rows <= 0:
        return []
    parts = min(ngpu, rows)
    base, extra = divmod(rows, parts)
    chunks = []
    start = lo
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def check_shard_capacity(n: int, config, ngpu: int) -> None:
    """Raise :class:`CapacityError` if a shard exceeds per-device memory.

    Each device of a tile-row partition holds its shard of the padded
    matrix (``ceil(nbt / g)`` tile rows x ``npad`` columns) plus one
    panel copy (``npad x ts``, the broadcast landing buffer), with the
    same 1.25 working-set factor the single-device capacity model uses.
    ``ngpu=1`` delegates to ``Backend.check_capacity`` exactly.
    """
    from ..core.tiling import ntiles

    storage = config.require_precision("multi-GPU prediction")
    if ngpu == 1:
        config.backend.check_capacity(n, storage)
        return
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    shard_rows_n = math.ceil(nbt / ngpu) * ts
    shard_bytes = (shard_rows_n * npad + npad * ts) * storage.sizeof * 1.25
    spec = config.backend.device
    if shard_bytes > spec.mem_bytes:
        raise CapacityError(
            f"{n}x{n} {storage.name} matrix sharded over {ngpu} devices "
            f"needs {shard_bytes / 2**30:.1f} GiB per device; "
            f"{config.backend.name} has {spec.mem_gb} GiB "
            f"(use more devices or a smaller matrix)"
        )


def partition_graph(
    graph: LaunchGraph, ngpu: int, link: Optional[LinkSpec] = None
) -> LaunchGraph:
    """Shard a replayable square launch graph across ``ngpu`` devices.

    Returns a new :class:`LaunchGraph` with ``ngpu`` set, per-node
    ``device`` assignments, per-device row-chunked update launches and
    explicit comm nodes priced against ``link``.  ``ngpu=1`` returns
    ``graph`` itself, untouched (structural no-op).  Counted graphs
    cannot be partitioned (their folded nodes carry no tile metadata);
    multi-stream graphs can - the column chunks of the lookahead variant
    compose with the row chunks of the device shards.
    """
    if ngpu < 1:
        raise ShapeError(f"need at least one device, got {ngpu}")
    if ngpu == 1:
        return graph
    if graph.counted:
        raise ValueError(
            "counted graphs fold launch runs without tile metadata and "
            "cannot be partitioned; emit with counted=False"
        )
    if graph.out_of_core:
        raise ValueError(
            "graph rewriters compose in a fixed order: partition_graph "
            "first, then rewrite_out_of_core - this graph is already "
            "rewritten out-of-core"
        )
    if link is None:
        raise ValueError("partitioning across devices requires a LinkSpec")
    if graph.kind == "batched":
        return _partition_batched(graph, ngpu, link)
    if graph.kind != "square":
        raise ValueError(
            f"only square and batched solve graphs can be partitioned, "
            f"got {graph.kind!r}"
        )

    ts, nbt, npad = graph.ts, graph.nbt, graph.npad
    bw, lat = link.bandwidth_gbs, link.latency_us
    bcast_hops = max(1, math.ceil(math.log2(ngpu)))
    remote = (ngpu - 1) / ngpu  # fraction of a shared volume held remotely

    nodes = graph.nodes
    new_nodes: List[LaunchNode] = []
    #: old node index -> indices of its partitioned replacements
    mapped: List[Tuple[int, ...]] = []
    bcast_idx: Dict[int, int] = {}  # sweep -> panel_bcast node index
    band_gathered = False

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    def mdeps(node: LaunchNode) -> Tuple[int, ...]:
        seen: List[int] = []
        for d in node.deps:
            for m in mapped[d]:
                if m not in seen:
                    seen.append(m)
        return tuple(seen)

    def comm(kind: str, elems: int, hops: int, deps, device: int) -> int:
        return add(
            LaunchNode(
                kind,
                Stage.COMM,
                ("comm", int(elems), hops, bw, lat),
                deps=tuple(deps),
                device=device,
            )
        )

    for node in nodes:
        kind = node.kind
        deps = mdeps(node)
        if kind == "geqrt":
            lq, row0, k, sweep = node.meta
            owner = k % ngpu
            if deps:
                # shard boundary exchange: the new panel column was
                # updated on every device; its owner gathers the remote
                # tiles before factoring
                height = nbt - row0
                elems = math.ceil(height * remote) * ts * ts
                b = comm("boundary_x", elems, 1, deps, owner)
                deps = (*deps, b)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=owner)
            )
            r = nbt - row0 - 1
            if not graph.fused and r > 0:
                # unfused sweeps pipeline per-row TSQRT outputs; model the
                # panel shipment as one broadcast issued with the chain
                elems = (r + 1) * (ts * ts + ts)
                bcast_idx[sweep] = comm(
                    "panel_bcast", elems, bcast_hops, (i,), owner
                )
        elif kind == "ftsqrt":
            lq, row0, k, rows, sweep = node.meta
            owner = k % ngpu
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=owner)
            )
            r = rows[1] - rows[0]
            elems = (r + 1) * (ts * ts + ts)
            bcast_idx[sweep] = comm(
                "panel_bcast", elems, bcast_hops, (i,), owner
            )
        elif kind == "tsqrt":
            lq, row0, k, l, sweep = node.meta
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=k % ngpu)
            )
        elif kind == "unmqr":
            lq, row0, k, c0t, off, cw, sweep = node.meta
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=k % ngpu)
            )
        elif kind == "tsmqr":
            lq, row0, k, l, c0t, off, cw, sweep = node.meta
            owner = k % ngpu
            chunks = shard_rows(row0 + 1, nbt, ngpu)
            dev = owner
            for ci, (a, b) in enumerate(chunks):
                if a <= l < b:
                    dev = (owner + ci) % ngpu
                    break
            bc = bcast_idx.get(sweep)
            if dev != owner and bc is not None:
                deps = (*deps, bc)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           device=dev)
            )
        elif kind == "ftsmqr":
            lq, row0, k, rows, c0t, off, cw, sweep = node.meta
            owner = k % ngpu
            bc = bcast_idx.get(sweep)
            parts: List[int] = []
            for ci, (a, b) in enumerate(shard_rows(rows[0], rows[1], ngpu)):
                dev = (owner + ci) % ngpu
                cdeps = deps
                if dev != owner and bc is not None:
                    cdeps = (*deps, bc)
                parts.append(
                    add(
                        LaunchNode(
                            kind,
                            node.stage,
                            ("update", cw, b - a, True),
                            (lq, row0, k, (a, b), c0t, off, cw, sweep),
                            cdeps,
                            device=dev,
                        )
                    )
                )
            mapped.append(tuple(parts))
            continue
        elif kind == "brd_chase":
            if not band_gathered:
                band_gathered = True
                elems = math.ceil(npad * (ts + 1) * remote)
                g = comm("band_gather", elems, 1, deps, 0)
                deps = (*deps, g)
            i = add(
                LaunchNode(
                    kind, node.stage, node.key, node.meta, deps,
                    primary=node.primary, device=0,
                )
            )
        else:  # bdsqr_cpu (and any future single-device tail)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           primary=node.primary, device=0)
            )
        mapped.append((i,))

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=ngpu,
    )


def _partition_batched(
    graph: LaunchGraph, ngpu: int, link: LinkSpec
) -> LaunchGraph:
    """Shard a batched launch graph round-robin across ``ngpu`` devices.

    Problems are independent, so the partition is embarrassingly simple:
    every aggregate launch splits into per-device launches covering that
    device's round-robin problem subset (device ``d`` of a node covering
    ``range(start, stop, step)`` takes ``range(start + d*step, stop,
    step*g)``), chains stay serial *within* a device and carry no
    cross-device dependencies, and communication is a single
    ``batch_gather`` comm node collecting the non-root devices' singular
    values to device 0 - the only inter-device movement a batch needs.
    Devices left without problems (``g > batch``) receive no nodes.
    """
    bw, lat = link.bandwidth_gbs, link.latency_us
    new_nodes: List[LaunchNode] = []
    #: old node index -> device -> replacement index
    mapped: List[Dict[int, int]] = []
    solve_tails: List[int] = []
    remote_problems = 0

    for node in graph.nodes:
        probs = node.meta[0]
        start, stop, step = probs[1], probs[2], probs[3]
        old_count = len(problem_range(probs))
        per: Dict[int, int] = {}
        for d in range(ngpu):
            dprobs = ("b", start + d * step, stop, step * ngpu)
            bcount = len(problem_range(dprobs))
            if bcount == 0:
                continue
            deps = tuple(
                mapped[dep][d] for dep in node.deps if d in mapped[dep]
            )
            new_nodes.append(
                LaunchNode(
                    node.kind,
                    node.stage,
                    rekey_batched(node.key, old_count, bcount),
                    (dprobs,) + node.meta[1:],
                    deps,
                    primary=node.primary,
                    device=d,
                )
            )
            per[d] = len(new_nodes) - 1
            if node.kind == "bdsqr_cpu_b":
                solve_tails.append(per[d])
                if d != 0:
                    remote_problems += bcount
        mapped.append(per)

    # one gather of the non-root devices' results (n values per problem)
    new_nodes.append(
        LaunchNode(
            "batch_gather",
            Stage.COMM,
            ("comm", remote_problems * graph.n, 1, bw, lat),
            deps=tuple(solve_tails),
            device=0,
        )
    )

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=graph.npad,
        ts=graph.ts,
        nbt=graph.nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=ngpu,
    )


def _price_batched_partitioned(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned batched graph into a :class:`TimeBreakdown`.

    Devices own disjoint problem subsets and share no dependencies until
    the final gather, so every compute stage charges the *maximum* over
    devices of that device's stage time (concurrent devices), transfers
    likewise per device into ``io_s``, and the gather lands in
    ``comm_s``.  Launch counts come from the partitioned graph itself.
    """
    spec = config.backend.device
    compute = config.backend.compute_precision(storage)
    if cache is None:
        cache = {}

    # stage -> device -> accumulated seconds (incl. overheads)
    per_dev: Dict[str, Dict[int, float]] = {}
    comm_s = 0.0
    launches: Dict[str, int] = {}
    flops = 0.0
    nbytes = 0.0
    for node in graph.nodes:
        cost = price_node(node, config, storage, compute, cache)
        overhead = node_overhead_s(node, spec)
        flops += cost.flops
        nbytes += cost.bytes
        launches[node.kind] = launches.get(node.kind, 0) + node.count
        if node.stage == Stage.COMM:
            comm_s += cost.seconds
            continue
        stage_devs = per_dev.setdefault(node.stage, {})
        dev = node.device or 0
        stage_devs[dev] = stage_devs.get(dev, 0.0) + cost.seconds + overhead

    def stage_max(stage: str) -> float:
        devs = per_dev.get(stage)
        return max(devs.values()) if devs else 0.0

    return TimeBreakdown(
        n=graph.n,
        panel_s=stage_max(Stage.PANEL),
        update_s=stage_max(Stage.UPDATE),
        brd_s=stage_max(Stage.BRD),
        solve_s=stage_max(Stage.SOLVE),
        comm_s=comm_s,
        io_s=stage_max(Stage.TRANSFER),
        launches=launches,
        flops=flops,
        bytes=nbytes,
        ngpu=graph.ngpu,
    )


def price_partitioned(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned graph into a :class:`TimeBreakdown`.

    Array implementation over the graph's struct-of-arrays table: serial
    stages fold in node order, per-sweep device maxima become grouped
    ``np.maximum.reduceat`` reductions.  Float-identical to
    :func:`price_partitioned_scalar`, the per-node reference oracle it is
    pinned against (``tests/test_table_props.py``).
    """
    from .table import price_partitioned_table  # table imports this module

    return price_partitioned_table(graph.table(), config, storage, cache)


def price_partitioned_scalar(
    graph: LaunchGraph,
    config,
    storage,
    cache: Optional[dict] = None,
) -> TimeBreakdown:
    """Price a partitioned graph node by node (the reference oracle).

    Serial stages (panel chain, stage 2/3) accumulate in node order with
    the exact accounting of the
    :class:`~repro.sim.graph.AnalyticExecutor`, so their seconds are
    float-identical to the single-device prediction.  The update stage
    charges, per sweep, the maximum over devices of that device's update
    time (concurrent shards; the launch-granularity stand-in for the
    column-pipelined overlap), every comm node lands in ``comm_s``, and
    the host-link transfers of an out-of-core rewritten shard land in
    ``io_s``.  Launch counts come from the partitioned graph itself.
    Partitioned *batched* graphs price device-concurrently instead:
    every stage charges the maximum over devices (devices own disjoint
    problem subsets), with the gather as ``comm_s``.
    """
    if graph.kind == "batched":
        return _price_batched_partitioned(graph, config, storage, cache)
    spec = config.backend.device
    compute = config.backend.compute_precision(storage)
    if cache is None:
        cache = {}

    cost_s: Dict[str, float] = {}
    over_s: Dict[str, float] = {}
    launches: Dict[str, int] = {}
    flops = 0.0
    nbytes = 0.0
    # sweep -> device -> accumulated update seconds (incl. overheads)
    sweep_update: Dict[int, Dict[int, float]] = {}
    sweep_order: List[int] = []

    for node in graph.nodes:
        cost = price_node(node, config, storage, compute, cache)
        overhead = node_overhead_s(node, spec)
        flops += cost.flops
        nbytes += cost.bytes
        launches[node.kind] = launches.get(node.kind, 0) + node.count
        stage = node.stage
        if stage == Stage.UPDATE and graph.ngpu > 1:
            sweep = node.meta[-1]
            per_dev = sweep_update.get(sweep)
            if per_dev is None:
                per_dev = sweep_update[sweep] = {}
                sweep_order.append(sweep)
            dev = node.device or 0
            per_dev[dev] = per_dev.get(dev, 0.0) + cost.seconds + overhead
        else:
            cost_s[stage] = cost_s.get(stage, 0.0) + cost.seconds
            over_s[stage] = over_s.get(stage, 0.0) + overhead

    update_s = cost_s.get(Stage.UPDATE, 0.0) + over_s.get(Stage.UPDATE, 0.0)
    for sweep in sweep_order:
        update_s += max(sweep_update[sweep].values())

    def stage_total(stage: str) -> float:
        return cost_s.get(stage, 0.0) + over_s.get(stage, 0.0)

    return TimeBreakdown(
        n=graph.n,
        panel_s=stage_total(Stage.PANEL),
        update_s=update_s,
        brd_s=stage_total(Stage.BRD),
        solve_s=stage_total(Stage.SOLVE),
        comm_s=stage_total(Stage.COMM),
        io_s=stage_total(Stage.TRANSFER),
        launches=launches,
        flops=flops,
        bytes=nbytes,
        ngpu=graph.ngpu,
    )
