"""Struct-of-arrays pricing: the array-native analytic engine.

Per-node Python loops over :class:`~repro.sim.graph.LaunchNode` lists made
graph pricing the analytic hot path (ROADMAP item 4): ``Solver.tune``
prices dozens of candidates per call and the serving admission controller
prices every batch before dispatch, each walk costing milliseconds at
large tile counts.  This module replaces those walks with whole-array
NumPy evaluation over a :class:`NodeTable` - the struct-of-arrays view of
a launch graph - the way PPT-class analytic frameworks evaluate
parameterized tasklists as closed-form array expressions instead of
per-task interpreter loops.

The invariant (pinned by ``tests/test_table_props.py``): **the scalar
node loop is the oracle, the array path is the implementation.**  Every
result here is *float-identical* - not approximately equal - to the
per-node reference (:func:`~repro.sim.graph.price_node` folded in node
order).  Three properties make that possible:

* the vectorized cost-family mirrors (:func:`_panel_arrays`, ...) repeat
  the scalar formulas operand for operand in the same evaluation order,
  so every elementwise rounding matches;
* sums use :func:`_seqsum` - ``np.add.accumulate``, a strict sequential
  left fold with the same rounding as a Python accumulation loop
  (NumPy's pairwise ``np.sum`` would *not* match);
* non-associative scalar special cases (``x ** y`` via libm,
  ``brd``/``solve`` composites) fall back to the scalar oracle per
  *unique key*, of which a graph has O(tile count), not O(nodes).

Three consumers price tables: :func:`price_table` (the
:class:`~repro.sim.graph.AnalyticExecutor` accounting),
:func:`price_partitioned_table` (per-sweep/per-stage device maxima via
grouped folds and ``np.maximum.reduceat``), and :func:`stream_costs`
(per-node durations for the list scheduler).  Priced key arrays and
aggregated breakdown fields are memoized on the table per
``(config, storage)``, so replaying a bound table is O(1).

:func:`bound_structure` is the process-wide LRU memo behind
shape-parametric emission (``repro.core.svd.bind_svd_table`` /
``repro.core.batched.bind_batched_table``): bound tables and memoized
graphs are keyed by ``(family, config, shape axes)``, and
:func:`bound_table_stats` exposes hit/miss counters so callers (tune,
admission) can prove re-emission is gone.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .costmodel import LaunchCost
from .occupancy import (
    BASE_REG_BYTES_PER_THREAD,
    SATURATION_THREADS_PER_SM,
    warp_utilization,
)
from .tracing import Stage

__all__ = [
    "FAMILIES",
    "NodeTable",
    "bound_structure",
    "bound_table_stats",
    "clear_bound_tables",
    "price_partitioned_table",
    "price_table",
    "stream_costs",
]

#: Cost-key family names in ``fam``-code order.  A unique key's operands
#: live in the ``ops`` row; the family code selects the vectorized pricer.
FAMILIES = (
    "panel", "update", "brd", "solve", "panel_b", "brd_b", "solve_b", "comm",
    "gemm", "trsm",
)
_FAM_ID = {name: i for i, name in enumerate(FAMILIES)}

#: Families priced per unique key by the scalar oracle: stage-2/3 keys
#: (and the low-rank workload's GEMM/TRSM launches) have O(1)
#: multiplicity per graph, and their composites (three-way maxima, batch
#: scalings) are cheaper to delegate than to mirror.
_SCALAR_FAMILIES = ("brd", "solve", "brd_b", "solve_b", "gemm", "trsm")

#: Family codes charged no launch overhead (CPU calls, link transfers) -
#: mirrors ``repro.sim.graph._NO_OVERHEAD_FAMILIES``.
_NO_OVERHEAD_IDS = tuple(
    _FAM_ID[f] for f in ("solve", "solve_b", "comm")
)

_STAGE_ID = {name: i for i, name in enumerate(Stage.ALL)}
_UPDATE_ID = _STAGE_ID[Stage.UPDATE]
_COMM_ID = _STAGE_ID[Stage.COMM]


def _seqsum(a: np.ndarray) -> float:
    """Sum ``a`` as a strict sequential left fold (the oracle's order).

    ``np.add.accumulate`` computes the recurrence ``r[i] = r[i-1] + a[i]``
    element by element, so its last entry is float-identical to a Python
    ``for`` loop accumulating into ``0.0`` - unlike ``np.sum``, whose
    pairwise summation rounds differently.
    """
    if a.size == 0:
        return 0.0
    return float(np.add.accumulate(a)[-1])


def _exact_pow(a: np.ndarray, e: float) -> np.ndarray:
    """Elementwise ``x ** e`` through the Python scalar power.

    ``np.power`` short-circuits some exponents (``0.5`` -> ``sqrt``)
    where CPython calls libm ``pow``; routing each *unique* value through
    the scalar operator keeps the array path bit-identical to the oracle
    on any libm.  The occupancy fractions this prices take only a handful
    of distinct values per graph.
    """
    u, inv = np.unique(a, return_inverse=True)
    return np.array([x**e for x in u.tolist()])[inv]


# --------------------------------------------------------------------- #
# the struct-of-arrays node table
# --------------------------------------------------------------------- #
@dataclass
class NodeTable:
    """Struct-of-arrays view of one launch graph (or bound shape family).

    Node columns (length = node count): ``kind_id`` indexes ``kinds``,
    ``stage_id`` indexes :data:`Stage.ALL <repro.sim.tracing.Stage>`,
    ``key_id`` indexes the unique-key columns, ``counts`` folds counted
    runs, ``primary`` marks priced launches, ``device`` the owning device
    and ``sweep`` the update node's sweep (``-1`` elsewhere).

    Unique-key columns (length = distinct cost keys): ``fam`` is the
    :data:`FAMILIES` code and ``ops`` the numeric operand slots, from
    which the key tuples of the scalar namespace are materialized on
    demand (:meth:`key_tuples`) - parametric binders fill only the
    arrays, so binding never builds per-node Python objects.
    """

    kind: str
    n: int
    npad: int
    ts: int
    nbt: int
    ngpu: int
    out_of_core: bool
    kinds: Tuple[str, ...]
    kind_id: np.ndarray
    stage_id: np.ndarray
    key_id: np.ndarray
    counts: np.ndarray
    primary: np.ndarray
    device: np.ndarray
    sweep: np.ndarray
    fam: np.ndarray
    ops: np.ndarray
    nnodes: int = 1
    _keys: Optional[List[Tuple]] = field(
        default=None, repr=False, compare=False
    )
    _price_memo: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    _agg_memo: dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        """Number of launch rows in the table."""
        return int(self.kind_id.size)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph) -> "NodeTable":
        """Build the table from a materialized node list (one pass)."""
        key_ids: Dict[Tuple, int] = {}
        keys: List[Tuple] = []
        fam: List[int] = []
        ops: List[Tuple[float, float, float, float]] = []
        kind_ids: Dict[str, int] = {}
        kind_col: List[int] = []
        stage_col: List[int] = []
        key_col: List[int] = []
        count_col: List[int] = []
        primary_col: List[bool] = []
        device_col: List[int] = []
        sweep_col: List[int] = []
        for node in graph.nodes:
            key = node.key
            kid = key_ids.get(key)
            if kid is None:
                kid = key_ids[key] = len(keys)
                keys.append(key)
                fam.append(_FAM_ID[key[0]])
                row = [float(v) for v in key[1:]]
                row.extend(0.0 for _ in range(4 - len(row)))
                ops.append(tuple(row))
            ki = kind_ids.get(node.kind)
            if ki is None:
                ki = kind_ids[node.kind] = len(kind_ids)
            kind_col.append(ki)
            stage_col.append(_STAGE_ID[node.stage])
            key_col.append(kid)
            count_col.append(node.count)
            primary_col.append(node.primary)
            device_col.append(node.device or 0)
            meta = node.meta
            sweep_col.append(
                meta[-1]
                if node.stage == Stage.UPDATE and meta
                else -1
            )
        return cls(
            kind=graph.kind,
            n=graph.n,
            npad=graph.npad,
            ts=graph.ts,
            nbt=graph.nbt,
            ngpu=graph.ngpu,
            nnodes=graph.nnodes,
            out_of_core=graph.out_of_core,
            kinds=tuple(kind_ids),
            kind_id=np.asarray(kind_col, dtype=np.int64),
            stage_id=np.asarray(stage_col, dtype=np.int64),
            key_id=np.asarray(key_col, dtype=np.int64),
            counts=np.asarray(count_col, dtype=np.int64),
            primary=np.asarray(primary_col, dtype=bool),
            device=np.asarray(device_col, dtype=np.int64),
            sweep=np.asarray(sweep_col, dtype=np.int64),
            fam=np.asarray(fam, dtype=np.int64),
            ops=np.asarray(ops, dtype=np.float64).reshape(len(keys), 4),
            _keys=keys,
        )

    # ------------------------------------------------------------------ #
    def key_tuples(self) -> List[Tuple]:
        """Unique cost-key tuples (the scalar cache namespace), memoized."""
        if self._keys is None:
            self._keys = [
                _key_tuple(FAMILIES[f], op)
                for f, op in zip(self.fam.tolist(), self.ops.tolist())
            ]
        return self._keys

    def priced(self, config, storage) -> "PricedKeys":
        """Per-unique-key cost arrays, memoized per ``(config, storage)``."""
        memo_key = (config, storage)
        pk = self._price_memo.get(memo_key)
        if pk is None:
            pk = _price_keys(self, config, storage)
            self._price_memo[memo_key] = pk
        return pk

    def launch_counts(self) -> Dict[str, int]:
        """Kernel name -> launch count (``LaunchGraph.launch_counts``)."""
        totals = np.bincount(
            self.kind_id, weights=self.counts, minlength=len(self.kinds)
        )
        return {
            kind: int(c) for kind, c in zip(self.kinds, totals.tolist())
        }


@dataclass(frozen=True)
class PricedKeys:
    """Cost arrays per unique key (the vector mirror of ``LaunchCost``)."""

    seconds: np.ndarray
    flops: np.ndarray
    nbytes: np.ndarray
    compute_seconds: np.ndarray
    memory_seconds: np.ndarray
    #: True where the key's family pays the per-launch overhead.
    overhead: np.ndarray


def _key_tuple(family: str, op) -> Tuple:
    """Materialize one scalar-namespace key tuple from its operand row."""
    if family == "panel":
        return ("panel", int(op[0]), int(op[1]))
    if family == "update":
        return ("update", int(op[0]), int(op[1]), bool(op[2]))
    if family == "brd":
        return ("brd", int(op[0]), int(op[1]))
    if family == "solve":
        return ("solve", int(op[0]))
    if family == "panel_b":
        return ("panel_b", int(op[0]), int(op[1]), int(op[2]))
    if family == "brd_b":
        return ("brd_b", int(op[0]), int(op[1]), int(op[2]))
    if family == "solve_b":
        return ("solve_b", int(op[0]), int(op[1]))
    if family == "comm":
        return ("comm", int(op[0]), int(op[1]), float(op[2]), float(op[3]))
    if family == "gemm":
        return ("gemm", int(op[0]), int(op[1]), int(op[2]))
    if family == "trsm":
        return ("trsm", int(op[0]), int(op[1]))
    raise ValueError(f"unknown launch-cost family {family!r}")


# --------------------------------------------------------------------- #
# vectorized cost-family mirrors (operand-for-operand with costmodel.py)
# --------------------------------------------------------------------- #
def _panel_arrays(spec, params, storage, compute, coeffs, nbodies, body_tiles):
    """Vector mirror of :func:`~repro.sim.costmodel.panel_cost`."""
    ts = params.tilesize
    sk = params.splitk
    per_iter_cycles = (
        coeffs.panel_cycles_per_elem * body_tiles * ts / sk
        + coeffs.panel_sync_cycles * (1.0 + math.log2(sk))
    )
    cycles = nbodies * ts * per_iter_cycles
    reg_overflow = ts * compute.sizeof / coeffs.panel_reg_budget_bytes
    if reg_overflow > 1.0:
        cycles = cycles * (
            1.0 + coeffs.panel_reg_pressure * (reg_overflow - 1.0)
        )
    resident = ts * ts * compute.sizeof
    overflow = resident / spec.l1_bytes
    if overflow > 1.0:
        cycles = cycles * overflow**coeffs.panel_spill_exponent
    compute_s = cycles / spec.clock_hz
    nbytes = (
        coeffs.panel_mem_fraction
        * nbodies
        * body_tiles
        * 2.0
        * ts
        * ts
        * storage.sizeof
    )
    memory_s = nbytes / spec.bandwidth_bytes
    flops = nbodies * body_tiles * (4.0 / 3.0) * ts**3
    return np.maximum(compute_s, memory_s), flops, nbytes, compute_s, memory_s


def _update_arrays(
    spec, params, storage, compute, coeffs, width_cols, nrows, has_top_row
):
    """Vector mirror of :func:`~repro.sim.costmodel.update_cost`.

    ``has_top_row`` is a Python bool: callers split the update keys into
    the two fusion subgroups, whose register pressure is key-independent.
    """
    ts = params.tilesize
    cpb = params.colperblock
    nblocks = np.maximum(1, np.ceil(width_cols / cpb))
    flops = coeffs.update_flops_per_elem * nrows * ts * ts * width_cols
    priv_elems = ts * (2 if has_top_row else 1)
    priv_bytes = priv_elems * compute.sizeof
    spill = max(0.0, priv_bytes / coeffs.update_reg_budget_bytes - 1.0)
    compute_derate = 1.0 + coeffs.update_spill_penalty * spill
    occupancy, warp_util = _occupancy_arrays(
        spec, params, nblocks, compute.sizeof, priv_elems
    )
    parallel = _exact_pow(occupancy, coeffs.update_occ_exponent) * (
        warp_util**coeffs.update_divergence_exp
    )
    eff_flops = spec.peak_flops(compute.sizeof) * coeffs.update_compute_eff
    compute_s = flops * compute_derate / np.maximum(eff_flops * parallel, 1.0)
    sz = storage.sizeof
    nbytes = 2.0 * nrows * ts * width_cols * sz
    if has_top_row:
        nbytes = nbytes + 2.0 * ts * width_cols * sz
    nbytes = nbytes + (
        coeffs.update_l2_reuse * nblocks * nrows * (ts * ts + ts) * sz
    )
    memory_s = nbytes / (spec.effective_bandwidth * coeffs.update_mem_eff)
    return np.maximum(compute_s, memory_s), flops, nbytes, compute_s, memory_s


def _occupancy_arrays(
    spec, params, nblocks, sizeof_compute, regs_per_thread_elems
):
    """Vector mirror of :func:`~repro.sim.occupancy.update_occupancy`.

    Only the grid size varies per key; every per-SM limit is a scalar of
    the configuration, so just occupancy comes back as an array.
    """
    ts = params.tilesize
    cpb = params.colperblock
    smem_block = 2 * ts * sizeof_compute
    reg_bytes_thread = (
        regs_per_thread_elems * sizeof_compute + BASE_REG_BYTES_PER_THREAD
    )
    limit_threads = max(1, spec.max_threads_per_sm // cpb)
    limit_blocks = spec.max_blocks_per_sm
    limit_smem = max(1, spec.l1_bytes // smem_block)
    reg_file = spec.registers_per_sm_kb * 1024
    limit_regs = max(1, reg_file // max(1, reg_bytes_thread * cpb))
    bpsm = max(1, min(limit_threads, limit_blocks, limit_smem, limit_regs))
    in_flight = bpsm * spec.sm_count
    active_threads = np.minimum(nblocks, in_flight) * cpb
    occupancy = np.minimum(
        1.0, active_threads / (spec.sm_count * SATURATION_THREADS_PER_SM)
    )
    return occupancy, warp_utilization(cpb, spec.warp_size)


def _panel_b_arrays(
    spec, params, storage, compute, coeffs, nbodies, body_tiles, batch
):
    """Vector mirror of the ``panel_b`` composite of ``price_node``."""
    sec, flops, nbytes, compute_s, memory_s = _panel_arrays(
        spec, params, storage, compute, coeffs, nbodies, body_tiles
    )
    rounds = np.maximum(1, np.ceil(batch / spec.sm_count))
    return (
        sec * rounds,
        flops * batch,
        nbytes * batch,
        compute_s * rounds,
        memory_s * batch,
    )


def _comm_arrays(storage, elems, hops, link_gbs, latency_us):
    """Vector mirror of :func:`~repro.sim.costmodel.comm_cost`."""
    nbytes = elems * storage.sizeof
    seconds = hops * (latency_us * 1e-6 + nbytes / (link_gbs * 1e9))
    zero = np.zeros_like(seconds)
    return seconds, zero, nbytes * hops, zero, seconds


def _price_keys(table: NodeTable, config, storage) -> PricedKeys:
    """Price every unique key of ``table`` into :class:`PricedKeys`."""
    from .graph import price_key  # graph does not import table eagerly

    spec = config.backend.device
    params, coeffs = config.params, config.coeffs
    compute = config.backend.compute_precision(storage)
    fam, ops = table.fam, table.ops
    K = fam.size
    sec = np.zeros(K)
    flo = np.zeros(K)
    byt = np.zeros(K)
    cse = np.zeros(K)
    mse = np.zeros(K)

    def assign(mask, arrays):
        sec[mask], flo[mask], byt[mask], cse[mask], mse[mask] = arrays

    for code in np.unique(fam).tolist():
        mask = fam == code
        family = FAMILIES[code]
        if family == "panel":
            assign(
                mask,
                _panel_arrays(
                    spec, params, storage, compute, coeffs,
                    ops[mask, 0], ops[mask, 1],
                ),
            )
        elif family == "update":
            for top in (False, True):
                sub = mask & (ops[:, 2] == float(top))
                if sub.any():
                    assign(
                        sub,
                        _update_arrays(
                            spec, params, storage, compute, coeffs,
                            ops[sub, 0], ops[sub, 1], top,
                        ),
                    )
        elif family == "panel_b":
            assign(
                mask,
                _panel_b_arrays(
                    spec, params, storage, compute, coeffs,
                    ops[mask, 1], ops[mask, 2], ops[mask, 0],
                ),
            )
        elif family == "comm":
            assign(
                mask,
                _comm_arrays(
                    storage,
                    ops[mask, 0], ops[mask, 1], ops[mask, 2], ops[mask, 3],
                ),
            )
        else:
            # brd / solve (and their batched composites): a handful of
            # unique keys per graph - delegate to the scalar oracle
            for i in np.flatnonzero(mask).tolist():
                cost = price_key(
                    _key_tuple(family, ops[i]), config, storage, compute
                )
                sec[i] = cost.seconds
                flo[i] = cost.flops
                byt[i] = cost.bytes
                cse[i] = cost.compute_seconds
                mse[i] = cost.memory_seconds
    return PricedKeys(
        seconds=sec,
        flops=flo,
        nbytes=byt,
        compute_seconds=cse,
        memory_seconds=mse,
        overhead=~np.isin(fam, _NO_OVERHEAD_IDS),
    )


# --------------------------------------------------------------------- #
# per-node cost columns (shared by the three table pricers)
# --------------------------------------------------------------------- #
def _node_costs(table: NodeTable, config, storage, cache: Optional[dict]):
    """Per-node (seconds, overhead, flops, bytes) arrays.

    Non-primary nodes price to zero (they charge only overhead), matching
    ``price_node``'s ``ZERO_COST`` early-out.  A caller-provided ``cache``
    keeps the scalar contract: pre-existing entries override the table's
    prices, missing keys are filled with equal-valued
    :class:`~repro.sim.costmodel.LaunchCost` objects (the launch-price
    memo a plan shares with numeric replay).
    """
    pk = table.priced(config, storage)
    sec, flo, byt = pk.seconds, pk.flops, pk.nbytes
    if cache is not None:
        overrides = []
        for i, key in enumerate(table.key_tuples()):
            cost = cache.get(key)
            if cost is None:
                cache[key] = LaunchCost(
                    seconds=float(sec[i]),
                    flops=float(flo[i]),
                    bytes=float(byt[i]),
                    compute_seconds=float(pk.compute_seconds[i]),
                    memory_seconds=float(pk.memory_seconds[i]),
                )
            elif (
                cost.seconds != sec[i]
                or cost.flops != flo[i]
                or cost.bytes != byt[i]
            ):
                overrides.append((i, cost))
        if overrides:
            sec, flo, byt = sec.copy(), flo.copy(), byt.copy()
            for i, cost in overrides:
                sec[i] = cost.seconds
                flo[i] = cost.flops
                byt[i] = cost.bytes
    kid = table.key_id
    node_sec = np.where(table.primary, sec[kid], 0.0)
    node_flops = np.where(table.primary, flo[kid], 0.0)
    node_bytes = np.where(table.primary, byt[kid], 0.0)
    spec = config.backend.device
    node_over = np.where(
        pk.overhead[kid], spec.launch_overhead_s, 0.0
    )
    return node_sec, node_over, node_flops, node_bytes


def _launches(table: NodeTable) -> Dict[str, int]:
    """Kernel name -> launch count, honoring counted folds."""
    totals = np.bincount(
        table.kind_id, weights=table.counts, minlength=len(table.kinds)
    )
    return {kind: int(c) for kind, c in zip(table.kinds, totals.tolist())}


# --------------------------------------------------------------------- #
# table pricers
# --------------------------------------------------------------------- #
def price_table(table: NodeTable, config, storage, cache=None):
    """Price a table with the serial per-stage accounting.

    Array implementation of
    :meth:`~repro.sim.graph.AnalyticExecutor.run_scalar`: per-stage
    kernel seconds and overheads fold in node order (counted nodes
    expanded by repetition), so every
    :class:`~repro.sim.schedule.TimeBreakdown` field is float-identical
    to the scalar loop.  With ``cache=None`` the aggregated fields are
    memoized on the table, making a repeat pricing O(1).
    """
    from .schedule import TimeBreakdown  # avoid import cycle

    memo_key = ("serial", config, storage)
    fields = table._agg_memo.get(memo_key) if cache is None else None
    if fields is None:
        sec, over, flo, byt = _node_costs(table, config, storage, cache)
        stage = table.stage_id
        counts = table.counts
        if counts.max(initial=1) > 1:
            # expand counted nodes by repetition so per-stage sums stay
            # float-identical to the traced per-launch run
            sec = np.repeat(sec, counts)
            over = np.repeat(over, counts)
            flo = np.repeat(flo, counts)
            byt = np.repeat(byt, counts)
            stage = np.repeat(stage, counts)
        totals = []
        for si in range(len(Stage.ALL)):
            mask = stage == si
            totals.append(_seqsum(sec[mask]) + _seqsum(over[mask]))
        fields = (tuple(totals), _seqsum(flo), _seqsum(byt))
        if cache is None:
            table._agg_memo[memo_key] = fields
    (panel_s, update_s, brd_s, solve_s, comm_s, io_s), flops, nbytes = fields
    return TimeBreakdown(
        n=table.n,
        panel_s=panel_s,
        update_s=update_s,
        brd_s=brd_s,
        solve_s=solve_s,
        comm_s=comm_s,
        io_s=io_s,
        launches=_launches(table),
        flops=flops,
        bytes=nbytes,
        ngpu=table.ngpu,
    )


def _group_totals(sec, over, codes):
    """Per-group ``(total + sec) + over`` folds in array order.

    Elements sharing a code accumulate exactly like the scalar loop's
    ``acc = acc + seconds + overhead`` (zero padding is exact: the values
    are non-negative, so adding trailing ``0.0`` never re-rounds).
    Returns the sorted unique codes and one total per code.
    """
    ucodes, inv = np.unique(codes, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    sinv = inv[order]
    starts = np.searchsorted(sinv, np.arange(ucodes.size))
    ends = np.append(starts[1:], sinv.size)
    width = int((ends - starts).max())
    M = np.zeros((ucodes.size, 2 * width))
    pos = np.arange(sinv.size) - starts[sinv]
    M[sinv, 2 * pos] = sec[order]
    M[sinv, 2 * pos + 1] = over[order]
    return ucodes, np.add.accumulate(M, axis=1)[:, -1]


def price_partitioned_table(table: NodeTable, config, storage, cache=None):
    """Price a partitioned table (device maxima as grouped reductions).

    Array implementation of
    :func:`~repro.sim.partition.price_partitioned_scalar`: square graphs
    fold serial stages in node order and charge the update stage per
    sweep as the maximum over per-device folds
    (``np.maximum.reduceat`` over the sweep groups); batched graphs
    charge every stage's per-device maximum, with the gather as
    ``comm_s``.  Float-identical to the scalar oracle.
    """
    from .schedule import TimeBreakdown  # avoid import cycle

    memo_key = ("part", config, storage)
    fields = table._agg_memo.get(memo_key) if cache is None else None
    if fields is None:
        sec, over, flo, byt = _node_costs(table, config, storage, cache)
        if table.kind == "batched":
            fields = _partitioned_batched_fields(table, sec, over, flo, byt)
        else:
            fields = _partitioned_square_fields(table, sec, over, flo, byt)
        if cache is None:
            table._agg_memo[memo_key] = fields
    (
        (panel_s, update_s, brd_s, solve_s, comm_s, io_s),
        (comm_intra, comm_inter),
        flops,
        nbytes,
    ) = fields
    return TimeBreakdown(
        n=table.n,
        panel_s=panel_s,
        update_s=update_s,
        brd_s=brd_s,
        solve_s=solve_s,
        comm_s=comm_s,
        io_s=io_s,
        launches=_launches(table),
        flops=flops,
        bytes=nbytes,
        ngpu=table.ngpu,
        nnodes=table.nnodes,
        comm_intra_s=comm_intra,
        comm_inter_s=comm_inter,
    )


def _comm_tier_split(table, sec):
    """Intra/inter comm folds in node order (the scalar loop's buckets).

    Comm nodes carry no launch overhead, so each tier folds ``sec``
    alone - exactly the running float sum the scalar pricers keep.
    """
    comm_mask = table.stage_id == _COMM_ID
    inter_ids = [
        i for i, k in enumerate(table.kinds) if k.endswith("_inter")
    ]
    if inter_ids:
        inter_mask = comm_mask & np.isin(
            table.kind_id, np.asarray(inter_ids, dtype=np.int64)
        )
    else:
        inter_mask = np.zeros_like(comm_mask)
    return (
        _seqsum(sec[comm_mask & ~inter_mask]),
        _seqsum(sec[inter_mask]),
    )


def _partitioned_square_fields(table, sec, over, flo, byt):
    """Aggregate a partitioned square table's breakdown fields."""
    stage = table.stage_id
    grouped = (
        (stage == _UPDATE_ID)
        if table.ngpu > 1
        else np.zeros(stage.shape, dtype=bool)
    )
    totals = []
    for si in range(len(Stage.ALL)):
        mask = (stage == si) & ~grouped
        totals.append(_seqsum(sec[mask]) + _seqsum(over[mask]))
    if grouped.any():
        idx = np.flatnonzero(grouped)
        sweeps = table.sweep[idx]
        devs = table.device[idx]
        ndev = int(devs.max()) + 1
        ucodes, group_tot = _group_totals(
            sec[idx], over[idx], sweeps * ndev + devs
        )
        code_sweeps = ucodes // ndev  # ascending unique sweeps
        sweep_starts = np.flatnonzero(
            np.r_[True, code_sweeps[1:] != code_sweeps[:-1]]
        )
        sweep_max = np.maximum.reduceat(group_tot, sweep_starts)
        # the scalar loop adds sweep maxima in first-seen node order
        _, first = np.unique(sweeps, return_index=True)
        sweep_max = sweep_max[np.argsort(np.argsort(first, kind="stable"))]
        totals[_UPDATE_ID] = float(
            np.add.accumulate(
                np.concatenate(([totals[_UPDATE_ID]], sweep_max))
            )[-1]
        )
    return (
        tuple(totals), _comm_tier_split(table, sec),
        _seqsum(flo), _seqsum(byt),
    )


def _partitioned_batched_fields(table, sec, over, flo, byt):
    """Aggregate a partitioned batched table's breakdown fields."""
    stage = table.stage_id
    comm_mask = stage == _COMM_ID
    totals = [0.0] * len(Stage.ALL)
    totals[_COMM_ID] = _seqsum(sec[comm_mask])
    idx = np.flatnonzero(~comm_mask)
    if idx.size:
        devs = table.device[idx]
        ndev = int(devs.max()) + 1
        ucodes, group_tot = _group_totals(
            sec[idx], over[idx], stage[idx] * ndev + devs
        )
        code_stage = ucodes // ndev
        stage_starts = np.flatnonzero(
            np.r_[True, code_stage[1:] != code_stage[:-1]]
        )
        stage_max = np.maximum.reduceat(group_tot, stage_starts)
        for si, v in zip(code_stage[stage_starts].tolist(), stage_max):
            totals[si] = float(v)
    return (
        tuple(totals), _comm_tier_split(table, sec),
        _seqsum(flo), _seqsum(byt),
    )


def stream_costs(table: NodeTable, config, storage, cache=None,
                 device_scale=None):
    """Per-node durations plus the serial accounting of the scheduler.

    Array implementation of the pricing prologue of
    :func:`~repro.sim.timeline.schedule_streams`: returns
    ``(durations, stage_seconds, launches, serial_s)`` where every value
    folds in node order, float-identical to the scalar loop.  The greedy
    list scheduling itself stays scalar - it is inherently sequential
    and cheap next to pricing.

    ``device_scale`` (heterogeneous fleets; see
    :func:`repro.sim.partition.fleet_scale`) multiplies each *compute*
    launch's kernel seconds by its device's scale factor relative to the
    handle's reference backend - comm and host-transfer nodes price
    against their link specs and are not scaled, nor are launch
    overheads (host-side).  ``None`` (or all-ones) is the identity.
    """
    sec, over, _flo, _byt = _node_costs(table, config, storage, cache)
    if device_scale is not None:
        scale_arr = np.asarray(device_scale, dtype=np.float64)
        factor = scale_arr[table.device]
        compute = ~np.isin(
            table.stage_id,
            [Stage.ALL.index(Stage.COMM), Stage.ALL.index(Stage.TRANSFER)],
        )
        sec = np.where(compute, sec * factor, sec)
    durs = sec + over
    stage = table.stage_id
    stage_seconds: Dict[str, float] = {}
    for si, name in enumerate(Stage.ALL):
        mask = stage == si
        if mask.any():
            stage_seconds[name] = _seqsum(durs[mask])
    counts = np.bincount(table.kind_id, minlength=len(table.kinds))
    launches = {
        kind: int(c) for kind, c in zip(table.kinds, counts.tolist())
    }
    return durs, stage_seconds, launches, _seqsum(durs)


# --------------------------------------------------------------------- #
# the bound-structure memo (shape-parametric emission)
# --------------------------------------------------------------------- #
_BOUND: "OrderedDict[Tuple, object]" = OrderedDict()
_BOUND_MAX = 256
_BOUND_HITS = 0
_BOUND_MISSES = 0


def bound_structure(key: Tuple, build: Callable[[], object]):
    """Process-wide LRU memo of bound tables and memoized graphs.

    ``key`` must capture every axis the built structure depends on (the
    frozen config hashes by value, so it is a safe component).  The memo
    is what turns ``Solver.tune``'s candidate loop and the admission
    controller's re-pricing into bind-and-price: the sweep structure of a
    shape family is built once and every later predict of the same axes
    is a lookup.  Counters are exposed by :func:`bound_table_stats`.
    """
    global _BOUND_HITS, _BOUND_MISSES
    value = _BOUND.get(key)
    if value is not None:
        _BOUND.move_to_end(key)
        _BOUND_HITS += 1
        return value
    _BOUND_MISSES += 1
    value = build()
    _BOUND[key] = value
    while len(_BOUND) > _BOUND_MAX:
        _BOUND.popitem(last=False)
    return value


def bound_table_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the bound-structure memo."""
    return {
        "hits": _BOUND_HITS,
        "misses": _BOUND_MISSES,
        "entries": len(_BOUND),
    }


def clear_bound_tables() -> None:
    """Drop every bound structure and reset the counters (tests)."""
    global _BOUND_HITS, _BOUND_MISSES
    _BOUND.clear()
    _BOUND_HITS = 0
    _BOUND_MISSES = 0
