"""Kernel hyperparameters (paper section 3.3).

The paper exposes three parameters instead of reimplementing kernels per
architecture:

* ``tilesize`` (**TILESIZE**, algorithmic): the square tile edge of the
  stage-1 reduction.  It changes the dependency graph (loop trip counts in
  Algorithm 2) and the resulting band width.
* ``colperblock`` (**COLPERBLOCK**, computational): how many trailing-matrix
  columns one workgroup of the update kernels owns (Algorithm 4).
* ``splitk`` (**SPLITK**, computational): how many threads collaborate on
  one tile column inside the panel kernels (Algorithm 3 extension); the
  same operations run in the same order, split across threads with shared
  memory reductions.

:class:`KernelParams` validates the constraints stated in the paper:
``TILESIZE`` in [4, 128], ``COLPERBLOCK`` dividing ``TILESIZE`` (the fused
kernel's cooperative loads iterate ``TILESIZE / COLPERBLOCK`` times), and
``SPLITK <= min(TILESIZE, 1024 / TILESIZE)`` from the thread-block size
limit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from ..errors import InvalidParamsError

__all__ = ["KernelParams", "REFERENCE_PARAMS", "param_grid"]

#: Hard thread-block limit shared by all simulated devices.
MAX_BLOCK_THREADS = 1024

#: TILESIZE search range from the paper ("values between 4 and 128").
MIN_TILESIZE = 4
MAX_TILESIZE = 128


@dataclass(frozen=True)
class KernelParams:
    """Validated hyperparameter triple for the stage-1 kernels."""

    tilesize: int = 32
    colperblock: int = 32
    splitk: int = 8

    def __post_init__(self) -> None:
        """Validate the hyperparameter ranges at construction."""
        ts, cpb, sk = self.tilesize, self.colperblock, self.splitk
        if not (MIN_TILESIZE <= ts <= MAX_TILESIZE):
            raise InvalidParamsError(
                f"TILESIZE={ts} outside supported range "
                f"[{MIN_TILESIZE}, {MAX_TILESIZE}]"
            )
        if cpb < 1 or cpb > ts or ts % cpb != 0:
            raise InvalidParamsError(
                f"COLPERBLOCK={cpb} must divide TILESIZE={ts} "
                "(cooperative loads iterate TILESIZE/COLPERBLOCK times)"
            )
        if sk < 1 or sk > self.max_splitk(ts):
            raise InvalidParamsError(
                f"SPLITK={sk} exceeds min(TILESIZE, {MAX_BLOCK_THREADS}/TILESIZE)"
                f"={self.max_splitk(ts)} for TILESIZE={ts}"
            )

    @staticmethod
    def max_splitk(tilesize: int) -> int:
        """Largest SPLITK allowed by the thread-block size limit."""
        return max(1, min(tilesize, MAX_BLOCK_THREADS // tilesize))

    # ------------------------------------------------------------------ #
    @property
    def panel_threads(self) -> int:
        """Threads per panel-kernel block (``SPLITK x TILESIZE``)."""
        return self.splitk * self.tilesize

    @property
    def update_threads(self) -> int:
        """Threads per update-kernel block (``COLPERBLOCK``)."""
        return self.colperblock

    def with_(self, **kwargs) -> "KernelParams":
        """Return a copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def astuple(self) -> Tuple[int, int, int]:
        """``(tilesize, colperblock, splitk)``."""
        return (self.tilesize, self.colperblock, self.splitk)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        """Compact TS/CPB/SK triple (the paper's notation)."""
        return f"TS={self.tilesize},CPB={self.colperblock},SK={self.splitk}"


#: The paper's Table 3 reference configuration.
REFERENCE_PARAMS = KernelParams(tilesize=32, colperblock=32, splitk=8)


def param_grid(
    tilesizes=(8, 16, 32, 64, 128),
    colperblocks=(8, 16, 32, 64, 128),
    splitks=(1, 2, 4, 8, 16),
) -> Iterator[KernelParams]:
    """Yield every *valid* combination from the given axes.

    This is the brute-force search space of section 3.3; invalid
    combinations (constraint violations) are silently skipped.
    """
    for ts in tilesizes:
        for cpb in colperblocks:
            for sk in splitks:
                try:
                    yield KernelParams(ts, cpb, sk)
                except InvalidParamsError:
                    continue
