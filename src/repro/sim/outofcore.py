"""Out-of-core graph rewriter: tile panels through a bounded device window.

The paper's closing future work names out-of-core execution alongside
multi-GPU scaling.  PR 3 made multi-GPU a graph axis; before this module,
``out_of_core=True`` still priced a closed-form formula that never touched
the launch graph.  Performance-prediction frameworks like PPT model data
movement as explicit tasks in the *same* dependency graph as compute -
that is what lets transfer/compute overlap fall out of the scheduler
instead of a formula.  This module does the same for the host link:

:func:`rewrite_out_of_core` takes any replayable square
:class:`~repro.sim.graph.LaunchGraph` (single-device or already
partitioned by :func:`repro.sim.partition.partition_graph` - rewriters
compose in that fixed order) plus a device-memory budget, and rewrites it
into a host-resident plan in the same IR:

* the matrix lives on the host; each device holds a bounded **window** of
  tiles.  Per sweep, the panel column and the pivot tile row are pinned
  (one ``h2d_tile`` load), while the trailing tile rows stream through
  the remaining window in double-buffered row chunks;
* every host<->device movement is an explicit ``h2d_tile`` / ``d2h_tile``
  node (:data:`~repro.sim.graph.TRANSFER_KINDS`), priced by the existing
  ``LinkSpec``/``comm_cost`` path over the PCIe-class host link
  (``coeffs.pcie_gbs`` / ``coeffs.pcie_latency_us``) and tagged
  :data:`Stage.TRANSFER` so transfer time lands in the breakdown's own
  ``io_s`` component;
* trailing-update launches wider than one window are split into
  per-window row chunks (the same meta scheme the multi-GPU partitioner
  uses, so numeric replay stays bitwise identical), and the dependency
  wiring lets the prefetch of window *k+1* overlap the trailing update
  of window *k*: an ``h2d_tile`` depends only on the eviction that frees
  its buffer, never on the compute consuming the *current* window.  Under
  :func:`repro.sim.timeline.schedule_streams` transfers occupy a
  dedicated per-device host-link lane, mirroring the comm lanes of
  partitioned graphs - so ``out_of_core`` composes with ``streams`` and
  with ``ngpu`` (partition first, then rewrite each device's shard
  against its own budget);
* the rewritten graph carries its window capacity
  (``LaunchGraph.oc_capacity_tiles``); during numeric replay the
  :class:`~repro.sim.graph.NumericExecutor` drives a
  :class:`~repro.backends.memory.TileResidency` per device through
  :class:`WindowTracker` and *faults* if any kernel touches a tile the
  transfer schedule did not make resident - out-of-core correctness is
  tested numerically, not just priced.

A graph whose (per-device) working set already fits the budget is
returned unchanged, so ``io_s`` is nonzero only past capacity and the
in-core prediction is reproduced exactly.  The pre-rewriter closed form
survives as :func:`repro.sim.scaling.out_of_core_closed_form_resolved`,
the consistency oracle the tests pin this path against.

Batched graphs rewrite at *problem* granularity instead: a batch is many
independent small matrices, so whole problems stream through the device
window (the budget shared across every in-flight problem), each window
running the full three-stage pipeline for its problems between one
``h2d_tile`` load and one ``d2h_tile`` band write-back, double-buffered
so the prefetch of the next window overlaps the compute of the current
one.  Replay enforces residency per problem through the same
:class:`WindowTracker`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..errors import CapacityError
from .costmodel import LinkSpec
from .graph import (
    COMM_KINDS,
    LaunchGraph,
    LaunchNode,
    problem_range,
    rekey_batched,
)
from .tracing import Stage

__all__ = [
    "WindowTracker",
    "host_link",
    "rewrite_out_of_core",
    "window_capacity_tiles",
]

#: Working-set slack factor of the window budget (tau workspace, padding),
#: matching the 1.25 factor of the in-core capacity model.
_WORKING_FACTOR = 1.25

#: Stage-1 kinds that touch only pinned tiles (pivot row + panel column).
_PINNED_KINDS = ("geqrt", "unmqr", "ftsqrt", "tsqrt")

#: Stage-1 kinds that stream trailing tile rows through the window.
_WINDOW_KINDS = ("ftsmqr", "tsmqr")


def host_link(config) -> LinkSpec:
    """The PCIe-class host link out-of-core transfers are priced against."""
    return LinkSpec(
        "pcie-host", config.coeffs.pcie_gbs, config.coeffs.pcie_latency_us
    )


def window_capacity_tiles(budget_bytes: float, ts: int, sizeof: int) -> int:
    """Window capacity in tiles for a device-memory budget in bytes."""
    return int(budget_bytes // (ts * ts * sizeof * _WORKING_FACTOR))


def _fits_in_core(graph: LaunchGraph, sizeof: int, budget_bytes: float) -> bool:
    """True when the (per-device) working set fits the budget in-core."""
    if graph.ngpu == 1:
        limit = math.isqrt(int(budget_bytes / (sizeof * _WORKING_FACTOR)))
        return graph.n <= limit
    # per-device tile-row shard plus a panel landing buffer, exactly the
    # footprint check_shard_capacity charges
    shard_rows_n = math.ceil(graph.nbt / graph.ngpu) * graph.ts
    shard_bytes = (
        (shard_rows_n * graph.npad + graph.npad * graph.ts)
        * sizeof
        * _WORKING_FACTOR
    )
    return shard_bytes <= budget_bytes


# --------------------------------------------------------------------- #
# tile-set decoding (shared by the rewriter's plan and the replay check)
# --------------------------------------------------------------------- #
def _swap(tiles, lq: bool):
    """View tile coordinates -> padded-matrix coordinates."""
    return {(c, r) for r, c in tiles} if lq else set(tiles)


def _col_tiles(c0t: int, off: int, cw: int, ts: int) -> range:
    """Tile columns an update launch touches right of the panel."""
    c0 = c0t * ts + off
    return range(c0 // ts, -(-(c0 + cw) // ts))


def _block_tiles(meta: Tuple, ts: int) -> set:
    """Padded-matrix tiles of one ``h2d_tile`` / ``d2h_tile`` block."""
    tag = meta[0]
    if tag == "pin":
        _, lq, row0, k, nbt = meta
        tiles = {(row0, c) for c in range(k, nbt)}
        tiles.update((l, k) for l in range(row0 + 1, nbt))
        return _swap(tiles, lq)
    if tag == "win":
        _, lq, lo, hi, c0, nbt = meta
        tiles = {
            (l, c) for l in range(lo, hi) for c in range(c0, nbt)
        }
        return _swap(tiles, lq)
    raise ValueError(f"unknown transfer block {meta!r}")


def _node_tiles(node: LaunchNode, ts: int) -> set:
    """Padded-matrix tiles one stage-1 compute launch touches."""
    kind = node.kind
    meta = node.meta
    if kind not in _PINNED_KINDS and kind not in _WINDOW_KINDS:
        return set()
    lq = meta[0]
    if kind == "geqrt":
        _, row, col, _ = meta
        tiles = {(row, col)}
    elif kind == "unmqr":
        _, row, col, c0t, off, cw, _ = meta
        tiles = {(row, col)}
        tiles.update((row, c) for c in _col_tiles(c0t, off, cw, ts))
    elif kind == "ftsqrt":
        _, row, col, rows, _ = meta
        tiles = {(row, col)}
        tiles.update((l, col) for l in range(*rows))
    elif kind == "ftsmqr":
        _, row, col, rows, c0t, off, cw, _ = meta
        cols = _col_tiles(c0t, off, cw, ts)
        tiles = set()
        for l in range(*rows):
            tiles.add((l, col))
            tiles.update((l, c) for c in cols)
        tiles.update((row, c) for c in cols)
    elif kind == "tsqrt":
        _, row, col, l, _ = meta
        tiles = {(row, col), (l, col)}
    elif kind == "tsmqr":
        _, row, col, l, c0t, off, cw, _ = meta
        cols = _col_tiles(c0t, off, cw, ts)
        tiles = {(l, col)}
        tiles.update((l, c) for c in cols)
        tiles.update((row, c) for c in cols)
    else:
        return set()
    return _swap(tiles, lq)


# --------------------------------------------------------------------- #
# replay-side residency enforcement
# --------------------------------------------------------------------- #
class WindowTracker:
    """Drive per-device :class:`~repro.backends.memory.TileResidency`.

    Installed by :meth:`repro.sim.graph.NumericExecutor.run` on graphs
    with ``out_of_core=True``: transfer nodes load/evict tiles, every
    compute node must find its tiles resident, and the stage-2 chase must
    find the band buffer loaded - any violation faults the replay with
    :class:`~repro.errors.WindowOverflowError`.
    """

    def __init__(self, graph: LaunchGraph) -> None:
        from ..backends.memory import TileResidency

        #: Batched graphs track residency at *problem* granularity: the
        #: window holds whole problems, one slot per matrix.
        self.batched = graph.kind == "batched"
        cap = (
            graph.oc_capacity_problems if self.batched
            else graph.oc_capacity_tiles
        )
        if cap is None:
            raise ValueError(
                "out-of-core graph carries no window capacity; rewrite it "
                "with rewrite_out_of_core"
            )
        self.ts = graph.ts
        self.nbt = graph.nbt
        #: tile-equivalents the stage-2 band buffer occupies
        self.band_tiles = -(-(graph.npad * (graph.ts + 1)) // graph.ts**2)
        self._res = {
            d: TileResidency(cap, device=d) for d in range(max(1, graph.ngpu))
        }

    def _dev(self, node: LaunchNode):
        return self._res[node.device or 0]

    def on_transfer(self, node: LaunchNode) -> None:
        """Apply one ``h2d_tile`` / ``d2h_tile`` node to the window."""
        res = self._dev(node)
        if node.meta and node.meta[0] == "bwin":
            # batched window: whole problems move in and out
            probs = problem_range(node.meta)
            if node.kind == "h2d_tile":
                res.load(probs)
            else:
                res.evict(probs)
            return
        if node.meta and node.meta[0] == "band":
            res.load_band(self.band_tiles if node.kind == "h2d_tile" else 0)
            return
        tiles = _block_tiles(node.meta, self.ts)
        if node.kind == "h2d_tile":
            res.load(tiles)
        else:
            res.evict(tiles)

    def require(self, node: LaunchNode) -> None:
        """Fault unless a compute node's tiles (or problems) are resident."""
        kind = node.kind
        if kind in COMM_KINDS:
            return  # device-device movement: no window tiles
        if self.batched:
            # every batched launch (incl. stage 2/3) touches the matrices
            # of its problem subset, which must be in the window
            self._dev(node).require(problem_range(node.meta[0]), kind)
            return
        if kind in ("bdsqr_cpu", "steig_cpu"):
            return  # CPU solve: no window tiles
        if kind == "brd_chase":
            self._dev(node).require_band(kind)
            return
        self._dev(node).require(_node_tiles(node, self.ts), kind)


# --------------------------------------------------------------------- #
# the batched rewriter: whole problems stream through the window
# --------------------------------------------------------------------- #
def _rewrite_batched(
    graph: LaunchGraph, config, storage, budget_bytes: float
) -> LaunchGraph:
    """Rewrite a batched graph to stream whole problems through the window.

    A batch is many independent small matrices, so the natural streaming
    granularity is the *problem*, not the tile: the device window holds
    as many padded matrices as the budget allows (the budget is shared
    across every in-flight problem), each chain of the graph is re-emitted
    window-major - load a window of problems (one ``h2d_tile``), run the
    full three-stage pipeline for exactly those problems, write their
    bands back (one ``d2h_tile``) - and double-buffering lets the
    prefetch of window ``w+1`` overlap the compute of window ``w`` under
    :func:`repro.sim.timeline.schedule_streams`: a load depends only on
    the eviction that frees its buffer.  A graph whose every device
    sub-batch fits the budget is returned unchanged (``io_s`` is nonzero
    only past capacity); once any device must stream, every device loads
    its problems from the host - devices whose sub-batch fits move it as
    one whole window, so replay-side residency enforcement stays
    coherent across devices.
    """
    sizeof = storage.sizeof
    npad, ts = graph.npad, graph.ts
    per_prob = npad * npad * sizeof * _WORKING_FACTOR
    pcap = int(budget_bytes // per_prob)

    # chain discovery: every (device, problem subset) pair is one serial
    # chain; comm nodes (the gather of a partitioned batch) pass through
    chains: Dict[Tuple, List[int]] = {}
    comm_idx: List[int] = []
    for i, node in enumerate(graph.nodes):
        if node.kind in COMM_KINDS:
            comm_idx.append(i)
            continue
        chains.setdefault(node.meta[0], []).append(i)
    by_dev: Dict[int, List[Tuple]] = {}
    for probs, idxs in chains.items():
        dev = graph.nodes[idxs[0]].device or 0
        by_dev.setdefault(dev, []).append(probs)
    needs = {
        dev: sum(len(problem_range(p)) for p in plist) * per_prob
        > budget_bytes
        for dev, plist in by_dev.items()
    }
    if not any(needs.values()):
        return graph
    for dev, plist in by_dev.items():
        if needs[dev] and pcap < len(plist):
            raise CapacityError(
                f"out-of-core window of {budget_bytes / 2**30:.2f} GiB "
                f"holds {pcap} {graph.n}x{graph.n} ({storage.name}) "
                f"problems; device {dev} runs {len(plist)} concurrent "
                f"chains and needs at least one resident problem per "
                f"chain - raise the budget or lower streams"
            )

    bw, lat = config.coeffs.pcie_gbs, config.coeffs.pcie_latency_us
    new_nodes: List[LaunchNode] = []
    mapped: Dict[int, Tuple[int, ...]] = {}

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    def xfer(kind: str, elems: int, meta: Tuple, deps, device) -> int:
        return add(
            LaunchNode(
                kind,
                Stage.TRANSFER,
                ("comm", int(elems), 1, bw, lat),
                meta,
                tuple(deps),
                device=device,
            )
        )

    for dev in sorted(by_dev):
        plist = by_dev[dev]
        # the device budget is shared across its concurrent chains; a
        # device whose whole sub-batch fits still loads it from the host
        # (one window per chain) - in a host-resident plan every device's
        # problems start on the host, and replay enforces residency on
        # every device
        share = pcap // len(plist)
        for probs in plist:
            idxs = chains[probs]
            pr = problem_range(probs)
            old_count = len(pr)
            if needs[dev]:
                wsize, buffers = (share // 2, 2) if share >= 2 else (1, 1)
            else:
                wsize, buffers = max(1, old_count), 1
            nwin = -(-old_count // wsize)
            d2h_of: Dict[int, int] = {}
            parts: Dict[int, List[int]] = {oi: [] for oi in idxs}
            for w in range(nwin):
                pw = pr[w * wsize : (w + 1) * wsize]
                wcount = len(pw)
                wmeta = ("bwin", pw.start, pw.stop, pw.step)
                hdeps = (
                    (d2h_of[w - buffers],) if w - buffers in d2h_of else ()
                )
                prev = xfer(
                    "h2d_tile", wcount * npad * npad, wmeta, hdeps, dev
                )
                for oi in idxs:
                    node = graph.nodes[oi]
                    prev = add(
                        LaunchNode(
                            node.kind,
                            node.stage,
                            rekey_batched(node.key, old_count, wcount),
                            (("b", pw.start, pw.stop, pw.step),)
                            + node.meta[1:],
                            (prev,),
                            primary=node.primary,
                            device=node.device,
                        )
                    )
                    parts[oi].append(prev)
                # results travel back as the reduced bands (the values
                # themselves are tiny); the eviction frees the buffer
                d2h_of[w] = xfer(
                    "d2h_tile", wcount * npad * (ts + 1), wmeta, (prev,), dev
                )
            for oi, p in parts.items():
                mapped[oi] = tuple(p)
    for oi in comm_idx:
        node = graph.nodes[oi]
        deps = tuple(m for d in node.deps for m in mapped[d])
        mapped[oi] = (add(
            LaunchNode(node.kind, node.stage, node.key, node.meta, deps,
                       primary=node.primary, device=node.device)
        ),)

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=npad,
        ts=ts,
        nbt=graph.nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=graph.ngpu,
        out_of_core=True,
        oc_capacity_problems=pcap,
    )


# --------------------------------------------------------------------- #
# the low-rank rewriter: the input streams through the GEMMs row-wise
# --------------------------------------------------------------------- #
def _rewrite_lowrank(
    graph: LaunchGraph, config, storage, budget_bytes: float
) -> LaunchGraph:
    """Rewrite a low-rank graph to stream the input through the window.

    The randomized workload reads the ``m x n`` input exactly twice -
    once per sketch GEMM - and everything downstream fits in a few
    ``l``-wide panels, so the streaming plan is simple: the matrix stays
    on the host, each GEMM splits into row chunks sized to half the
    window (double-buffered: the prefetch of chunk ``j`` waits only on
    chunk ``j - 2`` finishing, so transfers overlap the multiply), and
    each chunk's ``h2d_tile`` load is priced on the host link like the
    square rewriter's windows.  ``A`` is read-only, so no eviction
    nodes are emitted - dropping a consumed chunk is free.  A graph
    whose per-device GEMM working set already fits the budget is
    returned unchanged.  Low-rank graphs are analytic-only, so the
    rewrite carries the window capacity for introspection but is never
    replayed under residency enforcement.
    """
    sizeof = storage.sizeof
    ncols = graph.n
    per_row = ncols * sizeof * _WORKING_FACTOR
    need: Dict[int, int] = {}
    for node in graph.nodes:
        if node.kind == "gemm":
            rows = node.key[node.meta[1]]
            dev = node.device or 0
            need[dev] = max(need.get(dev, 0), rows)
    if not need or all(
        rows * per_row <= budget_bytes for rows in need.values()
    ):
        return graph
    rows_cap = int(budget_bytes // per_row)
    if rows_cap < 2:
        raise CapacityError(
            f"out-of-core window of {budget_bytes / 2**30:.2f} GiB holds "
            f"{rows_cap} rows of a {ncols}-column ({storage.name}) input; "
            f"streaming needs at least 2 (one row per double buffer) - "
            f"raise the budget or shrink the matrix"
        )
    per_buf = max(1, rows_cap // 2)

    bw, lat = config.coeffs.pcie_gbs, config.coeffs.pcie_latency_us
    new_nodes: List[LaunchNode] = []
    mapped: List[Tuple[int, ...]] = []

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    for node in graph.nodes:
        seen: List[int] = []
        for dep in node.deps:
            for mi in mapped[dep]:
                if mi not in seen:
                    seen.append(mi)
        deps = tuple(seen)
        if node.kind != "gemm" or (
            node.key[node.meta[1]] * per_row <= budget_bytes
        ):
            mapped.append((add(
                LaunchNode(node.kind, node.stage, node.key, node.meta,
                           deps, primary=node.primary, device=node.device)
            ),))
            continue
        tag, axis, sweep = node.meta
        rows = node.key[axis]
        parts: List[int] = []
        lo = 0
        while lo < rows:
            hi = min(lo + per_buf, rows)
            # double buffer: this chunk's prefetch waits only on the
            # chunk two slots back releasing its buffer
            j = len(parts)
            hdeps = (parts[j - 2],) if j >= 2 else ()
            h = add(
                LaunchNode(
                    "h2d_tile", Stage.TRANSFER,
                    ("comm", (hi - lo) * ncols, 1, bw, lat),
                    ("lrwin", lo, hi), hdeps, device=node.device,
                )
            )
            key = list(node.key)
            key[axis] = hi - lo
            cdeps = (*deps, h)
            if parts:
                # the projection GEMM accumulates into one partial sum;
                # chunks serialize either way (one device, one stream)
                cdeps = (*cdeps, parts[-1])
            parts.append(
                add(
                    LaunchNode("gemm", node.stage, tuple(key),
                               (tag, axis, sweep), cdeps,
                               device=node.device)
                )
            )
            lo = hi
        mapped.append(tuple(parts))

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=graph.npad,
        ts=graph.ts,
        nbt=graph.nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=graph.ngpu,
        nnodes=graph.nnodes,
        out_of_core=True,
        oc_capacity_tiles=window_capacity_tiles(
            budget_bytes, graph.ts, sizeof
        ),
    )


# --------------------------------------------------------------------- #
# the rewriter
# --------------------------------------------------------------------- #
class _Window:
    """One streamed row chunk of a sweep's trailing tile rows."""

    __slots__ = ("lo", "hi", "h2d", "users", "d2h")

    def __init__(self, lo: int, hi: int, h2d: int) -> None:
        self.lo = lo
        self.hi = hi
        self.h2d = h2d
        self.users: List[int] = []
        self.d2h: Optional[int] = None


class _DevSweep:
    """Per-device streaming state of one sweep."""

    __slots__ = (
        "lq", "row0", "k", "pin", "base", "wr", "buffers", "w_tiles",
        "windows", "order", "last_panel", "last_update",
    )

    def __init__(self, lq, row0, k, pin, base, wr, buffers, w_tiles) -> None:
        self.lq = lq
        self.row0 = row0
        self.k = k
        self.pin = pin  # h2d node index of the pinned panel + pivot row
        self.base = base  # deps making the host copy current
        self.wr = wr  # window height in tile rows
        self.buffers = buffers  # resident windows (2 = double-buffered)
        self.w_tiles = w_tiles  # trailing tile columns per streamed row
        self.windows: Dict[int, _Window] = {}  # grid index -> window
        self.order: List[int] = []  # loaded, not yet evicted
        self.last_panel: Optional[int] = None
        self.last_update: Optional[int] = None


def rewrite_out_of_core(
    graph: LaunchGraph,
    config,
    storage,
    budget_bytes: Optional[float] = None,
) -> LaunchGraph:
    """Rewrite a square launch graph into a host-resident out-of-core plan.

    ``budget_bytes`` is the per-device memory budget (default: the
    backend's usable device memory).  Graphs whose (per-device) working
    set fits the budget are returned unchanged - the rewrite is a
    structural no-op exactly when the in-core path applies.  Otherwise a
    new graph in the same IR is returned with explicit ``h2d_tile`` /
    ``d2h_tile`` nodes, window-chunked trailing updates, ``out_of_core``
    set and the per-device window capacity recorded for replay
    enforcement.

    Raises :class:`~repro.errors.CapacityError` when the budget cannot
    hold even the minimum working set (pinned panel + pivot row + one
    streamed tile row + the stage-2 band).
    """
    if graph.counted:
        raise ValueError(
            "counted graphs fold launch runs without tile metadata and "
            "cannot be rewritten; emit with counted=False"
        )
    if graph.kind not in ("square", "batched", "lowrank"):
        raise ValueError(
            f"only square, batched and lowrank solve graphs can be "
            f"rewritten out-of-core, got {graph.kind!r}"
        )
    if graph.out_of_core:
        raise ValueError("graph is already rewritten out-of-core")
    if graph.nnodes > 1:
        raise ValueError(
            f"out-of-core streaming does not compose with multi-node "
            f"graphs (nnodes={graph.nnodes}); rewrite before the cluster "
            f"partition or drop one of the two axes"
        )
    if budget_bytes is None:
        budget_bytes = config.backend.device.mem_bytes
    if budget_bytes <= 0:
        raise CapacityError(
            f"device budget must be positive, got {budget_bytes}"
        )
    if graph.kind == "batched":
        return _rewrite_batched(graph, config, storage, budget_bytes)
    if graph.kind == "lowrank":
        return _rewrite_lowrank(graph, config, storage, budget_bytes)
    sizeof = storage.sizeof
    if _fits_in_core(graph, sizeof, budget_bytes):
        return graph

    ts, nbt, npad = graph.ts, graph.nbt, graph.npad
    cap = window_capacity_tiles(budget_bytes, ts, sizeof)
    band_tiles = -(-(npad * (ts + 1)) // ts**2)
    # minimum working set at sweep 0: pinned pivot row (nbt tiles) and
    # panel column (nbt - 1) plus one streamed tile row (nbt - 1), and
    # the stage-2 band buffer after the final flush
    min_cap = max(3 * nbt - 2, band_tiles, 1)
    if cap < min_cap:
        raise CapacityError(
            f"out-of-core window of {budget_bytes / 2**30:.2f} GiB holds "
            f"{cap} tiles; an n={graph.n} ({storage.name}) solve needs at "
            f"least {min_cap} (pinned panel + pivot row + one streamed "
            f"tile row) - raise the budget or shrink the matrix"
        )

    bw, lat = config.coeffs.pcie_gbs, config.coeffs.pcie_latency_us
    new_nodes: List[LaunchNode] = []
    #: old node index -> indices of its replacements (None while deferred)
    mapped: List[Optional[Tuple[int, ...]]] = []
    dev_flush: Dict[int, int] = {}  # device -> last pinned-flush node
    sweep_ctx: Dict[int, _DevSweep] = {}  # device -> current-sweep state
    #: multi-stream sweeps defer window users for window-major emission
    deferred: Dict[int, List[Tuple[int, LaunchNode]]] = {}
    cur_sweep: Optional[int] = None
    band_idx: Optional[int] = None

    def add(node: LaunchNode) -> int:
        new_nodes.append(node)
        return len(new_nodes) - 1

    def xfer(kind: str, elems: int, meta: Tuple, deps, device) -> int:
        return add(
            LaunchNode(
                kind,
                Stage.TRANSFER,
                ("comm", int(elems), 1, bw, lat),
                meta,
                tuple(deps),
                device=device,
            )
        )

    def mdeps(deps: Tuple[int, ...]) -> Tuple[int, ...]:
        if any(mapped[d] is None for d in deps):
            flush_deferred()
        seen: List[int] = []
        for d in deps:
            for m in mapped[d]:
                if m not in seen:
                    seen.append(m)
        return tuple(seen)

    # the ("pin", ...) meta and its element count are the contract with
    # _block_tiles / TileResidency: load and evict must stay in lock-step
    def pin_meta_for(lq: bool, row0: int, k: int) -> Tuple:
        return ("pin", lq, row0, k, nbt)

    def pin_elems_for(row0: int, k: int) -> int:
        return ((nbt - k) + (nbt - row0 - 1)) * ts * ts

    def pin_meta(st: _DevSweep) -> Tuple:
        return pin_meta_for(st.lq, st.row0, st.k)

    def pin_elems(st: _DevSweep) -> int:
        return pin_elems_for(st.row0, st.k)

    def open_sweep(dev: int, node: LaunchNode) -> _DevSweep:
        lq, row0, k = node.meta[0], node.meta[1], node.meta[2]
        base = (dev_flush[dev],) if dev in dev_flush else ()
        pin = xfer("h2d_tile", pin_elems_for(row0, k),
                   pin_meta_for(lq, row0, k), base, dev)
        w_tiles = nbt - 1 - k
        avail = cap - ((nbt - k) + (nbt - row0 - 1))
        if w_tiles > 0 and avail >= 2 * w_tiles:
            wr, buffers = avail // (2 * w_tiles), 2
        elif w_tiles > 0 and avail >= w_tiles:
            wr, buffers = 1, 1
        else:
            wr, buffers = max(1, w_tiles), 1  # no streamed rows this sweep
        st = _DevSweep(lq, row0, k, pin, base, wr, buffers, w_tiles)
        sweep_ctx[dev] = st
        return st

    def evict_window(st: _DevSweep, dev: int, j: int) -> int:
        w = st.windows[j]
        w.d2h = xfer(
            "d2h_tile",
            (w.hi - w.lo) * st.w_tiles * ts * ts,
            ("win", st.lq, w.lo, w.hi, st.k + 1, nbt),
            tuple(w.users) or (w.h2d,),
            dev,
        )
        return w.d2h

    def ensure_window(st: _DevSweep, dev: int, j: int) -> _Window:
        w = st.windows.get(j)
        if w is not None:
            if w.d2h is not None:  # pragma: no cover - rewriter bug
                raise ValueError(f"window {j} reloaded after eviction")
            return w
        freed: List[int] = []
        while len(st.order) >= st.buffers:
            freed.append(evict_window(st, dev, st.order.pop(0)))
        lo = st.row0 + 1 + j * st.wr
        hi = min(lo + st.wr, nbt)
        h = xfer(
            "h2d_tile",
            (hi - lo) * st.w_tiles * ts * ts,
            ("win", st.lq, lo, hi, st.k + 1, nbt),
            st.base + tuple(freed),
            dev,
        )
        w = _Window(lo, hi, h)
        st.windows[j] = w
        st.order.append(j)
        return w

    def window_range(st: _DevSweep, a: int, b: int) -> range:
        base = st.row0 + 1
        return range((a - base) // st.wr, (b - 1 - base) // st.wr + 1)

    def emit_chunks(
        orig: LaunchNode, deps: Tuple[int, ...], st: _DevSweep, dev: int
    ) -> Tuple[int, ...]:
        """Split one trailing-update launch by the window grid."""
        if orig.kind == "tsmqr":
            lq, row0, k, l, c0t, off, cw, sweep = orig.meta
            w = ensure_window(st, dev, window_range(st, l, l + 1)[0])
            i = add(
                LaunchNode(orig.kind, orig.stage, orig.key, orig.meta,
                           (*deps, st.pin, w.h2d), device=orig.device)
            )
            w.users.append(i)
            st.last_update = i
            return (i,)
        lq, row0, k, rows, c0t, off, cw, sweep = orig.meta
        parts: List[int] = []
        for j in window_range(st, rows[0], rows[1]):
            w = ensure_window(st, dev, j)
            a, b = max(rows[0], w.lo), min(rows[1], w.hi)
            if a >= b:
                continue
            cdeps = (*deps, st.pin, w.h2d)
            if parts:
                # the fused update's pivot row serializes its chunks
                cdeps = (*cdeps, parts[-1])
            key = orig.key if (a, b) == tuple(rows) else ("update", cw, b - a, True)
            i = add(
                LaunchNode(orig.kind, orig.stage, key,
                           (lq, row0, k, (a, b), c0t, off, cw, sweep),
                           cdeps, device=orig.device)
            )
            w.users.append(i)
            parts.append(i)
        st.last_update = parts[-1]
        return tuple(parts)

    def flush_deferred() -> None:
        """Emit deferred multi-stream window users, window-major."""
        if not deferred:
            return
        local: Dict[int, Tuple[int, ...]] = {}

        def resolve(deps: Tuple[int, ...]) -> Tuple[int, ...]:
            seen: List[int] = []
            for d in deps:
                for m in (mapped[d] if mapped[d] is not None else local[d]):
                    if m not in seen:
                        seen.append(m)
            return tuple(seen)

        items = sorted(deferred.items(), key=lambda kv: min(
            n.meta[3][0] if n.kind == "ftsmqr" else n.meta[3]
            for _, n in kv[1]
        ))
        for dev, group in items:
            st = sweep_ctx[dev]
            grid: Dict[int, List[Tuple[int, LaunchNode]]] = {}
            for orig_idx, node in group:
                a, b = (node.meta[3] if node.kind == "ftsmqr"
                        else (node.meta[3], node.meta[3] + 1))
                for j in window_range(st, a, b):
                    grid.setdefault(j, []).append((orig_idx, node))
            parts: Dict[int, List[int]] = {oi: [] for oi, _ in group}
            for j in sorted(grid):
                w = ensure_window(st, dev, j)
                for orig_idx, node in grid[j]:
                    if node.kind == "ftsmqr":
                        lq, row0, k, rows, c0t, off, cw, sweep = node.meta
                        a, b = max(rows[0], w.lo), min(rows[1], w.hi)
                        key = (node.key if (a, b) == tuple(rows)
                               else ("update", cw, b - a, True))
                        meta = (lq, row0, k, (a, b), c0t, off, cw, sweep)
                    else:
                        key, meta = node.key, node.meta
                    cdeps = (*resolve(node.deps), st.pin, w.h2d)
                    if parts[orig_idx]:
                        cdeps = (*cdeps, parts[orig_idx][-1])
                    i = add(
                        LaunchNode(node.kind, node.stage, key, meta, cdeps,
                                   device=node.device)
                    )
                    w.users.append(i)
                    parts[orig_idx].append(i)
                    st.last_update = i
            for orig_idx, p in parts.items():
                mapped[orig_idx] = tuple(p)
                local[orig_idx] = tuple(p)
        deferred.clear()

    def close_sweep() -> None:
        flush_deferred()
        for dev, st in sweep_ctx.items():
            while st.order:
                evict_window(st, dev, st.order.pop(0))
            fdeps: List[int] = [
                i for i in (st.last_panel, st.last_update) if i is not None
            ]
            fdeps.extend(
                w.d2h for w in st.windows.values() if w.d2h is not None
            )
            dev_flush[dev] = xfer(
                "d2h_tile", pin_elems(st), pin_meta(st),
                tuple(dict.fromkeys(fdeps)) or (st.pin,), dev,
            )
        sweep_ctx.clear()

    for node in graph.nodes:
        kind = node.kind
        if kind in COMM_KINDS:
            mapped.append((add(
                LaunchNode(kind, node.stage, node.key, node.meta,
                           mdeps(node.deps), primary=node.primary,
                           device=node.device)
            ),))
            continue
        if kind in ("brd_chase", "bdsqr_cpu", "steig_cpu"):
            deps = mdeps(node.deps)
            if band_idx is None:
                close_sweep()
                # stage 1 flushed the matrix to the host; stages 2-3 need
                # the reduced band back on device 0
                band_idx = xfer(
                    "h2d_tile", npad * (ts + 1), ("band",),
                    tuple(sorted(dev_flush.values())), node.device or 0,
                )
                deps = (*deps, band_idx)
            mapped.append((add(
                LaunchNode(kind, node.stage, node.key, node.meta, deps,
                           primary=node.primary, device=node.device)
            ),))
            continue

        # stage-1 compute node
        sweep = node.meta[-1]
        if sweep != cur_sweep:
            close_sweep()
            cur_sweep = sweep
        dev = node.device or 0
        st = sweep_ctx.get(dev)
        if st is None:
            st = open_sweep(dev, node)
        if kind in _PINNED_KINDS:
            deps = mdeps(node.deps)
            i = add(
                LaunchNode(kind, node.stage, node.key, node.meta,
                           (*deps, st.pin), device=node.device)
            )
            if node.stage == Stage.PANEL:
                st.last_panel = i
            else:
                st.last_update = i
            mapped.append((i,))
        elif kind in _WINDOW_KINDS:
            if graph.streams != 1:
                # multi-stream column chunks re-scan the streamed rows;
                # defer them and emit window-major at sweep close so each
                # window is loaded exactly once (analytic-only graphs)
                deferred.setdefault(dev, []).append((len(mapped), node))
                mapped.append(None)
            else:
                mapped.append(emit_chunks(node, mdeps(node.deps), st, dev))
        else:  # pragma: no cover - emitter bug
            raise ValueError(f"unknown launch kind {kind!r}")

    if band_idx is None:  # stage-1-only graphs (none today, but be safe)
        close_sweep()

    return LaunchGraph(
        nodes=new_nodes,
        kind=graph.kind,
        n=graph.n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        fused=graph.fused,
        streams=graph.streams,
        batch=graph.batch,
        mpad=graph.mpad,
        ngpu=graph.ngpu,
        out_of_core=True,
        oc_capacity_tiles=cap,
    )
