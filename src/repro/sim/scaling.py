"""Out-of-core and multi-GPU execution models (paper future work).

The paper closes with: "we aim to incorporate support for out-of-core
execution, multi-GPU scaling, and heterogeneous environments, enabling
larger problem sizes and better resource utilization."  This module
extends the analytic schedule model to both regimes so the design space
can be explored ahead of a kernel port:

* :func:`predict_out_of_core` prices the stage-1 reduction when the matrix
  exceeds device memory through the graph path: the emitted launch graph
  is rewritten by :func:`repro.sim.outofcore.rewrite_out_of_core` into a
  host-resident plan - pinned panels, trailing tile rows streamed through
  a bounded device window via explicit ``h2d_tile``/``d2h_tile`` transfer
  nodes - and priced with transfer time as the breakdown's own ``io_s``
  component.  The pre-rewriter closed form survives as
  :func:`out_of_core_closed_form_resolved`, its consistency oracle;
* :func:`predict_multi_gpu` prices a tile-row partitioned multi-GPU
  stage 1 through the graph path: the emitted launch graph is sharded by
  :func:`repro.sim.partition.partition_graph` (explicit comm nodes,
  per-device update chunks, serial panel chain) and priced by
  :func:`~repro.sim.partition.price_partitioned`.  The pre-partitioner
  closed form survives as :func:`multi_gpu_closed_form_resolved`, the
  consistency oracle the tests pin the graph path against.

Both return the same :class:`~repro.sim.schedule.TimeBreakdown` used by
the single-GPU model, so all reporting utilities apply; out-of-core
composes with ``streams`` (returning a
:class:`~repro.sim.timeline.StreamSchedule`) and with ``ngpu``
(partition first, then rewrite each device's shard against its own
budget).
"""

from __future__ import annotations

import math
from typing import Optional

from ..backends.backend import BackendLike
from ..errors import ShapeError
from ..precision import PrecisionLike
from .costmodel import DEFAULT_COEFFS, CostCoefficients
from .params import KernelParams
from .schedule import TimeBreakdown, predict_resolved

__all__ = [
    "multi_gpu_closed_form_resolved",
    "out_of_core_closed_form_resolved",
    "predict_multi_gpu",
    "predict_out_of_core",
]


def out_of_core_closed_form_resolved(n: int, config) -> TimeBreakdown:
    """Legacy closed-form out-of-core model (kept as a consistency oracle).

    This was the pre-rewriter streaming model: panels stay resident,
    every sweep streams the trailing submatrix in and out over the host
    link once, and the stage-1 update time becomes the maximum of the
    in-core update time and that transfer time (perfect overlap).  The
    graph path (:func:`repro.sim.outofcore.rewrite_out_of_core` +
    analytic pricing) replaced it; ``tests/test_outofcore.py`` pins the
    two models against each other on this formula's modeled regime
    (large, transfer-dominated sizes), so the rewritten pricing cannot
    silently drift from the physics the closed form encodes.
    """
    be = config.backend
    storage = config.require_precision("out-of-core prediction")
    params = config.params
    coeffs = config.coeffs
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")

    # in-core baseline without the capacity guard
    bd = predict_resolved(n, config, check_capacity=False)
    if n <= be.max_n(storage):
        return bd  # fits: out-of-core machinery is a no-op

    ts = params.tilesize
    nbt = max(1, math.ceil(n / ts))
    # per sweep: trailing submatrix streamed in and out once
    elems = 0.0
    for k in range(nbt - 1):
        w = (nbt - 1 - k) * ts
        elems += 2.0 * 2.0 * w * w  # RQ + LQ sweeps, in + out
    host_seconds = elems * storage.sizeof / (coeffs.pcie_gbs * 1e9)

    ooc = TimeBreakdown(
        n=n,
        panel_s=bd.panel_s,
        update_s=max(bd.update_s, host_seconds),
        brd_s=bd.brd_s,
        solve_s=bd.solve_s,
        launches=dict(bd.launches),
        flops=bd.flops,
        bytes=bd.bytes + elems * storage.sizeof,
    )
    ooc.launches["h2d_stream"] = 2 * (nbt - 1)
    return ooc


def predict_out_of_core_resolved(
    n: int,
    config,
    ngpu: int = 1,
    streams: int = 1,
    link_gbs: Optional[float] = None,
    budget_bytes: Optional[float] = None,
):
    """Out-of-core prediction against a resolved ``SolveConfig``.

    The single shared code path behind :meth:`repro.Solver.predict` with
    ``out_of_core=True`` and the legacy :func:`predict_out_of_core`
    shim: emit the launch graph the numeric driver would replay,
    partition it when ``ngpu > 1``, rewrite each device's shard against
    its memory budget (``budget_bytes``, default the backend's device
    memory) with explicit host-link transfer nodes, and price the
    result - analytically for ``streams == 1`` (transfer time as the
    breakdown's ``io_s``), through the device-aware list scheduler for
    ``streams > 1`` (transfers overlap compute on a dedicated host-link
    lane, returning a :class:`~repro.sim.timeline.StreamSchedule`).

    In-core problems pass through unrewritten, so ``io_s`` is nonzero
    only past capacity and ``ngpu=1, streams=1`` reproduces the default
    prediction exactly.
    """
    storage = config.require_precision("out-of-core prediction")
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")

    # the emitter lives with the drivers; lazy import keeps repro.sim
    # importable before repro.core
    from ..core.svd import emit_svd_graph
    from .graph import AnalyticExecutor
    from .outofcore import rewrite_out_of_core
    from .partition import partition_graph, price_partitioned
    from .table import bound_structure
    from .timeline import schedule_streams

    link = config.link_spec(link_gbs) if ngpu > 1 else None

    def _compose():
        graph = emit_svd_graph(n, config, streams=streams)
        if ngpu > 1:
            graph = partition_graph(graph, ngpu, link)
        return rewrite_out_of_core(
            graph, config, storage, budget_bytes=budget_bytes
        )

    # memoized per axes: repeated predictions of the same composition
    # (tune candidates, admission re-pricing) reuse the rewritten graph
    graph = bound_structure(
        ("sq_ooc_graph", config, n, ngpu, streams, link, budget_bytes),
        _compose,
    )
    if streams > 1:
        return schedule_streams(graph, config, storage, streams)
    if ngpu > 1:
        return price_partitioned(graph, config, storage)
    return AnalyticExecutor(config, storage).run(graph)


def predict_out_of_core(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> TimeBreakdown:
    """Predict runtime when the matrix exceeds device memory.

    The rewritten launch graph keeps the active panel and pivot row
    pinned and streams the trailing tile rows through a bounded,
    double-buffered device window; every host<->device movement is an
    explicit ``h2d_tile``/``d2h_tile`` node priced over the PCIe link.
    Total host traffic is about ``2 * sum_k (n - k*ts)^2 ~ (2/3) n^3 /
    ts`` elements - the classic out-of-core LU/QR bound - reported as
    the breakdown's ``io_s`` component.  Thin shim over
    :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver.predict(n, out_of_core=True)


def multi_gpu_closed_form_resolved(
    n: int, config, ngpus: int, link_gbs: float = 100.0
) -> TimeBreakdown:
    """Legacy closed-form multi-GPU model (kept as a consistency oracle).

    This was the pre-partitioner scaling model: trailing updates divide
    by the device count, the panel chain stays serial, and every sweep
    broadcasts its full panel column over a ``log2(g)``-deep tree.  The
    graph path (:func:`repro.sim.partition.partition_graph` +
    :func:`~repro.sim.partition.price_partitioned`) replaced it;
    ``tests/test_partition.py`` pins the two models against each other
    within tolerance on this formula's modeled regime (large,
    update-dominated sizes), so the partitioned pricing cannot silently
    drift from the physics the closed form encodes.
    """
    if ngpus < 1:
        raise ShapeError(f"need at least one GPU, got {ngpus}")
    storage = config.require_precision("multi-GPU prediction")
    params = config.params

    bd = predict_resolved(n, config, check_capacity=False)
    if ngpus == 1:
        return bd

    ts = params.tilesize
    nbt = max(1, math.ceil(n / ts))
    # per sweep (RQ + LQ): panel column broadcast to all peers
    bcast_elems = 2.0 * (nbt - 1) * (n * ts + ts * ts)
    comm_seconds = (
        bcast_elems
        * storage.sizeof
        * math.log2(ngpus)  # tree broadcast depth
        / (link_gbs * 1e9)
    )

    out = TimeBreakdown(
        n=n,
        panel_s=bd.panel_s,  # serial critical path
        update_s=bd.update_s / ngpus,
        comm_s=comm_seconds,
        brd_s=bd.brd_s,
        solve_s=bd.solve_s,
        launches=dict(bd.launches),
        flops=bd.flops,
        bytes=bd.bytes,
        ngpu=ngpus,
    )
    out.launches["panel_bcast"] = 2 * (nbt - 1)
    return out


def predict_multi_gpu_resolved(
    n: int, config, ngpus: int, link_gbs: Optional[float] = None
) -> TimeBreakdown:
    """Multi-GPU prediction against a resolved ``SolveConfig``.

    Since the partitioner landed this is a thin shim over the graph
    path: emit the single-device launch graph, shard it tile-row-wise
    across ``ngpus`` devices with explicit comm nodes, and price the
    partitioned graph (launch counts come from that graph; comm time is
    its own :class:`TimeBreakdown` component).  ``ngpus=1`` reproduces
    the single-device pricing exactly.  The single shared code path
    behind :meth:`repro.Solver.predict` with ``ngpu=`` and the legacy
    :func:`predict_multi_gpu` shim.
    """
    if ngpus < 1:
        raise ShapeError(f"need at least one GPU, got {ngpus}")
    storage = config.require_precision("multi-GPU prediction")
    if ngpus == 1:
        return predict_resolved(n, config, check_capacity=False)

    # the emitter lives with the drivers; lazy import keeps repro.sim
    # importable before repro.core
    from ..core.svd import emit_svd_graph
    from .partition import partition_graph, price_partitioned
    from .table import bound_structure

    link = config.link_spec(link_gbs)
    # memoized per axes: the partitioned structure is built once and
    # repeated predictions (tune candidates) price its cached table
    pgraph = bound_structure(
        ("sq_part_graph", config, n, ngpus, link),
        lambda: partition_graph(emit_svd_graph(n, config), ngpus, link),
    )
    return price_partitioned(pgraph, config, storage)


def predict_multi_gpu(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    ngpus: int,
    params: Optional[KernelParams] = None,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
    link_gbs: float = 100.0,
) -> TimeBreakdown:
    """Predict stage-1 scaling over ``ngpus`` identical devices.

    The launch graph is sharded tile-row-wise: trailing-update launches
    split into concurrent per-device chunks, the panel factorization
    chain stays serial (ownership rotates per sweep), and each sweep
    broadcasts its panel tiles and exchanges the shard boundary over the
    interconnect as explicit comm launches.  Stages 2-3 remain
    single-device after a band gather (they are small; the paper defers
    their distribution to the Dagger integration it envisions).

    Amdahl's law emerges naturally: speedup saturates once the serial
    panel chain dominates.  Thin shim over :class:`repro.Solver`.
    """
    from ..solver import Solver

    if ngpus < 1:  # the historical shim contract raises ShapeError
        raise ShapeError(f"need at least one GPU, got {ngpus}")
    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver.predict(n, ngpu=ngpus, link_gbs=link_gbs, check_capacity=False)
