"""Execution session: the unified kernel-launch API.

A :class:`Session` is the reproduction's KernelAbstractions analogue: it
binds one backend, one storage precision (and the backend-derived compute
precision), one hyperparameter set and a tracer, and exposes ``launch_*``
methods that the kernels call.  Each launch is priced by the cost model and
recorded; the numerics themselves run inline in NumPy.

The same launch calls are generated analytically by
:mod:`repro.sim.schedule`, and a property test pins that both paths charge
*identical* simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..backends.backend import Backend, BackendLike, resolve_backend
from ..precision import Precision, PrecisionLike
from .costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    LaunchCost,
    LinkSpec,
    bidiag_solve_cost,
    brd_cost,
    brd_launch_count,
    comm_cost,
    gemm_cost,
    panel_cost,
    transfer_cost,
    trsm_cost,
    update_cost,
)
from .params import KernelParams
from .tracing import LaunchRecord, Stage, Tracer

__all__ = ["Session"]


@dataclass
class Session:
    """Bound execution context for one ``svdvals`` run."""

    backend: Backend
    storage: Precision
    compute: Precision
    params: KernelParams
    coeffs: CostCoefficients = DEFAULT_COEFFS
    tracer: Tracer = field(default_factory=Tracer)
    #: Optional launch-shape -> LaunchCost memo.  The launch schedule of a
    #: fixed problem shape prices the same few launch shapes over and over;
    #: an :class:`~repro.solver.SvdPlan` shares one cache across repeated
    #: solves so only the first run pays the cost-model arithmetic.
    #: ``LaunchCost`` is frozen, so sharing instances is safe.
    cost_cache: Optional[Dict[Tuple, LaunchCost]] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        backend: BackendLike,
        precision: PrecisionLike,
        params: Optional[KernelParams] = None,
        coeffs: CostCoefficients = DEFAULT_COEFFS,
        keep_records: bool = True,
    ) -> "Session":
        """Build a session, resolving backend/precision spellings."""
        be = resolve_backend(backend)
        storage = be.check_precision(precision)
        compute = be.compute_precision(storage)
        return cls(
            backend=be,
            storage=storage,
            compute=compute,
            params=params if params is not None else KernelParams(),
            coeffs=coeffs,
            tracer=Tracer(keep_records=keep_records),
        )

    # ------------------------------------------------------------------ #
    # launch API used by the kernels
    # ------------------------------------------------------------------ #
    def _record(
        self, kernel: str, stage: str, cost: LaunchCost, grid: int, block: int
    ) -> None:
        self.tracer.record(
            LaunchRecord(
                kernel=kernel,
                stage=stage,
                cost=cost,
                overhead_s=self.backend.device.launch_overhead_s,
                grid=grid,
                block=block,
            )
        )

    def _cached(self, key: Tuple, compute_cost) -> LaunchCost:
        """Fetch a launch cost from the shared cache, pricing it on miss."""
        if self.cost_cache is None:
            return compute_cost()
        cost = self.cost_cache.get(key)
        if cost is None:
            cost = compute_cost()
            self.cost_cache[key] = cost
        return cost

    def launch_panel(
        self, kernel: str, nbodies: int = 1, body_tiles: int = 1
    ) -> None:
        """Record a panel-kernel launch (GEQRT / TSQRT / FTSQRT)."""
        cost = self._cached(
            ("panel", nbodies, body_tiles),
            lambda: panel_cost(
                self.backend.device,
                self.params,
                self.storage,
                self.compute,
                nbodies=nbodies,
                body_tiles=body_tiles,
                coeffs=self.coeffs,
            ),
        )
        self._record(kernel, Stage.PANEL, cost, 1, self.params.panel_threads)

    def launch_update(
        self,
        kernel: str,
        width_cols: int,
        nrows: int = 1,
        has_top_row: bool = True,
    ) -> None:
        """Record an update-kernel launch (UNMQR / TSMQR / FTSMQR)."""
        if width_cols <= 0:
            return
        cost = self._cached(
            ("update", width_cols, nrows, has_top_row),
            lambda: update_cost(
                self.backend.device,
                self.params,
                self.storage,
                self.compute,
                width_cols=width_cols,
                nrows=nrows,
                has_top_row=has_top_row,
                coeffs=self.coeffs,
            ),
        )
        grid = max(1, -(-width_cols // self.params.colperblock))
        self._record(kernel, Stage.UPDATE, cost, grid, self.params.colperblock)

    def launch_brd(self, n: int, band: int) -> None:
        """Record the stage-2 bulge-chasing launches."""
        cost = self._cached(
            ("brd", n, band),
            lambda: brd_cost(
                self.backend.device, n, band, self.storage, self.compute,
                self.coeffs,
            ),
        )
        launches = brd_launch_count(n, band, self.coeffs)
        if launches == 0:
            return
        # the aggregate kernel time rides on the first record; the remaining
        # launches carry only their overhead (same totals and counts as the
        # analytic schedule)
        self._record("brd_chase", Stage.BRD, cost, launches, band)
        for _ in range(launches - 1):
            self._record("brd_chase", Stage.BRD, LaunchCost(0.0), 1, band)

    def launch_solve(self, n: int, kernel: str = "bdsqr_cpu") -> None:
        """Record the stage-3 CPU finish (bidiagonal SVD or tridiagonal eig).

        ``kernel`` names the traced launch: ``"bdsqr_cpu"`` for the SVD
        pipeline's bidiagonal solve, ``"steig_cpu"`` for the symmetric
        eigensolver's tridiagonal finish.  Both share the ``("solve", n)``
        cost key - the finish is an ``O(n^2)`` CPU call either way.
        """
        cost = self._cached(
            ("solve", n),
            lambda: bidiag_solve_cost(
                self.backend.device, n, self.storage, self.coeffs
            ),
        )
        self.tracer.record(
            LaunchRecord(
                kernel=kernel, stage=Stage.SOLVE, cost=cost, overhead_s=0.0
            )
        )

    def launch_gemm(self, m: int, k: int, n: int) -> None:
        """Record one dense GEMM launch of the low-rank workload."""
        cost = self._cached(
            ("gemm", m, k, n),
            lambda: gemm_cost(
                self.backend.device, self.storage, self.compute, m, k, n,
                self.coeffs,
            ),
        )
        grid = max(1, -(-n // self.params.colperblock))
        self._record("gemm", Stage.UPDATE, cost, grid, self.params.colperblock)

    def launch_trsm(self, n: int, l: int) -> None:
        """Record one triangular-solve launch of the low-rank workload."""
        cost = self._cached(
            ("trsm", n, l),
            lambda: trsm_cost(
                self.backend.device, self.storage, self.compute, n, l,
                self.coeffs,
            ),
        )
        grid = max(1, -(-l // self.params.colperblock))
        self._record("trsm", Stage.UPDATE, cost, grid, self.params.colperblock)

    def launch_comm(self, kernel: str, key: Tuple, stage: str = Stage.COMM) -> None:
        """Record a link transfer of a partitioned or out-of-core graph.

        ``key`` is the node's self-contained ``("comm", elems, hops,
        link_gbs, latency_us)`` cost key (see
        :func:`repro.sim.graph.price_node`), shared with the analytic
        pricer through the cost cache.  ``stage`` distinguishes
        device-to-device comm nodes (:data:`Stage.COMM`, the default)
        from the host-link ``h2d_tile`` / ``d2h_tile`` transfers of an
        out-of-core graph (:data:`Stage.TRANSFER`).
        """
        _, elems, hops, link_gbs, latency_us = key
        cost = self._cached(
            key,
            lambda: comm_cost(
                LinkSpec("link", link_gbs, latency_us),
                elems * self.storage.sizeof,
                hops=hops,
            ),
        )
        self.tracer.record(
            LaunchRecord(
                kernel=kernel, stage=stage, cost=cost, overhead_s=0.0
            )
        )

    def launch_transfer(self, nbytes: float, label: str = "h2d") -> None:
        """Record a host<->device transfer."""
        cost = transfer_cost(nbytes, self.coeffs)
        self.tracer.record(
            LaunchRecord(kernel=label, stage=Stage.TRANSFER, cost=cost, overhead_s=0.0)
        )

    # ------------------------------------------------------------------ #
    @property
    def simulated_seconds(self) -> float:
        """Total simulated device time accumulated so far."""
        return self.tracer.total_seconds
