"""Occupancy model for the simulated devices.

Computes how many update-kernel blocks a device can keep in flight, from the
three classical limits (threads, shared memory, registers), and the derived
utilization factors the cost model consumes:

* **warp utilization** — a block of ``COLPERBLOCK`` threads occupies
  ``ceil(COLPERBLOCK / warp)`` full warps; lanes beyond ``COLPERBLOCK`` idle.
  This is the mechanism behind Table 3's COLPERBLOCK rows: halving
  COLPERBLOCK from 32 to 16 halves NVIDIA warp utilization and quarters AMD
  wavefront utilization, which the paper observes as a much larger penalty
  on the MI250.
* **occupancy fraction** — how close the grid comes to the thread count the
  device needs to hide latency.  Small matrices cannot fill large devices
  (the paper's explanation for small-size underperformance), and beyond
  full occupancy additional blocks serialize (the Figure 6 discussion of
  the RTX4060's steep trailing-update growth between 8k and 32k).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..backends.device import DeviceSpec
from .params import KernelParams

__all__ = ["OccupancyInfo", "update_occupancy", "warp_utilization"]

#: Threads per SM needed to hide pipeline/memory latency at peak throughput.
SATURATION_THREADS_PER_SM = 128

#: Register bytes reserved per thread independent of tile data.
BASE_REG_BYTES_PER_THREAD = 64


def warp_utilization(block_threads: int, warp_size: int) -> float:
    """Fraction of allocated SIMT lanes doing useful work for one block."""
    warps = math.ceil(block_threads / warp_size)
    return block_threads / (warps * warp_size)


@dataclass(frozen=True)
class OccupancyInfo:
    """Result of an occupancy computation for an update-kernel grid."""

    blocks_per_sm: int
    blocks_in_flight: int
    waves: int
    occupancy: float  # fraction of latency-hiding thread capacity in use
    warp_util: float  # lanes doing useful work / lanes allocated

    @property
    def effective_parallel_fraction(self) -> float:
        """Combined throughput derate from occupancy and divergence."""
        return self.occupancy * self.warp_util


def update_occupancy(
    spec: DeviceSpec,
    params: KernelParams,
    nblocks: int,
    sizeof_compute: int,
    regs_per_thread_elems: int,
) -> OccupancyInfo:
    """Occupancy of an update-kernel (UNMQR/TSMQR) grid.

    Parameters
    ----------
    spec:
        Target device.
    params:
        Kernel hyperparameters; ``colperblock`` is the block size.
    nblocks:
        Grid size (number of workgroups launched).
    sizeof_compute:
        Bytes per element in compute precision (register pressure).
    regs_per_thread_elems:
        Elements each thread keeps in registers (``TILESIZE`` for UNMQR,
        ``2 * TILESIZE`` for the fused TSMQR which holds X and Y columns).
    """
    ts = params.tilesize
    cpb = params.colperblock

    # shared memory per block: A_k column + tau (Algorithm 5 @localmem).
    smem_block = 2 * ts * sizeof_compute
    # registers per thread: private X/Y columns plus scalars.
    reg_bytes_thread = (
        regs_per_thread_elems * sizeof_compute + BASE_REG_BYTES_PER_THREAD
    )

    limit_threads = max(1, spec.max_threads_per_sm // cpb)
    limit_blocks = spec.max_blocks_per_sm
    limit_smem = max(1, spec.l1_bytes // smem_block)
    reg_file = spec.registers_per_sm_kb * 1024
    limit_regs = max(1, reg_file // max(1, reg_bytes_thread * cpb))

    bpsm = max(1, min(limit_threads, limit_blocks, limit_smem, limit_regs))
    in_flight = bpsm * spec.sm_count
    waves = max(1, math.ceil(nblocks / in_flight))

    active_threads = min(nblocks, in_flight) * cpb
    occupancy = min(
        1.0, active_threads / (spec.sm_count * SATURATION_THREADS_PER_SM)
    )
    wutil = warp_utilization(cpb, spec.warp_size)
    return OccupancyInfo(
        blocks_per_sm=bpsm,
        blocks_in_flight=in_flight,
        waves=waves,
        occupancy=occupancy,
        warp_util=wutil,
    )
