"""GPU execution simulator: cost model, occupancy, tracing, prediction.

The simulator replaces physical GPU timing in this reproduction.  Kernels
execute their numerics in NumPy while every launch is priced by an analytic
roofline/occupancy model parameterized by the Table 2 device specs; the
closed-form :func:`predict` walks the same launch schedule without numerics
for arbitrary matrix sizes.
"""

from .costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    LaunchCost,
    bidiag_solve_cost,
    brd_cost,
    panel_cost,
    update_cost,
)
from .occupancy import OccupancyInfo, update_occupancy, warp_utilization
from .params import REFERENCE_PARAMS, KernelParams, param_grid
from .scaling import predict_multi_gpu, predict_out_of_core
from .schedule import TimeBreakdown, predict, stage1_launch_count
from .session import Session
from .timeline import dump_json, kernel_summary, render_timeline, timeline_rows
from .tracing import LaunchRecord, Stage, Tracer

__all__ = [
    "CostCoefficients",
    "DEFAULT_COEFFS",
    "KernelParams",
    "LaunchCost",
    "LaunchRecord",
    "OccupancyInfo",
    "REFERENCE_PARAMS",
    "Session",
    "Stage",
    "TimeBreakdown",
    "Tracer",
    "bidiag_solve_cost",
    "brd_cost",
    "panel_cost",
    "param_grid",
    "predict",
    "predict_multi_gpu",
    "predict_out_of_core",
    "stage1_launch_count",
    "update_cost",
    "update_occupancy",
    "dump_json",
    "kernel_summary",
    "render_timeline",
    "timeline_rows",
    "warp_utilization",
]
