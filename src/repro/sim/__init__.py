"""GPU execution simulator: cost model, occupancy, tracing, prediction.

The simulator replaces physical GPU timing in this reproduction.  Every
problem shape is encoded once as a :class:`LaunchGraph` (emitted by the
drivers in :mod:`repro.core`); the :class:`NumericExecutor` replays it in
NumPy while pricing each launch with the analytic roofline/occupancy model
parameterized by the Table 2 device specs, the :class:`AnalyticExecutor`
prices the same graph without numerics for arbitrary matrix sizes
(:func:`predict`), and :func:`schedule_streams` prices multi-stream
lookahead overlap with a greedy critical-path scheduler.  Graph
rewriters extend the same IR across devices and memory tiers:
:func:`partition_graph` shards a graph across devices with explicit comm
nodes (square graphs tile-row-wise, batched graphs round-robin over
problems; ``nodes=m`` with a :class:`FabricSpec` shards across a
two-tier cluster and tags comm nodes with the tier they cross), and
:func:`rewrite_out_of_core` streams it through a bounded device window
with explicit host-link transfer nodes (square graphs by tile panels,
batched graphs by whole problems).  Cluster graphs are priced by
:func:`simulate_events` (:mod:`repro.sim.events`), a discrete-event
simulation in which launches occupy stream/link/fabric resources with
FIFO queueing — the greedy list scheduler is the fast approximation,
the event simulator is the oracle, and on contention-free graphs the
two agree exactly.
"""

from .costmodel import (
    DEFAULT_COEFFS,
    DEFAULT_INTER_LINK,
    CostCoefficients,
    FabricSpec,
    LaunchCost,
    LinkSpec,
    bidiag_solve_cost,
    brd_cost,
    comm_cost,
    panel_cost,
    update_cost,
)
from .events import EventSchedule, simulate_events
from .graph import AnalyticExecutor, LaunchGraph, LaunchNode, NumericExecutor
from .occupancy import OccupancyInfo, update_occupancy, warp_utilization
from .outofcore import rewrite_out_of_core, window_capacity_tiles
from .params import REFERENCE_PARAMS, KernelParams, param_grid
from .partition import (
    check_shard_capacity,
    fleet_weights,
    partition_graph,
    price_partitioned,
    shard_rows,
    shard_rows_weighted,
)
from .scaling import predict_multi_gpu, predict_out_of_core
from .schedule import TimeBreakdown, predict, stage1_launch_count
from .session import Session
from .table import (
    NodeTable,
    bound_table_stats,
    clear_bound_tables,
    price_table,
)
from .topology import Topology
from .timeline import (
    StreamSchedule,
    dump_json,
    kernel_summary,
    render_timeline,
    schedule_streams,
    timeline_rows,
)
from .tracing import LaunchRecord, Stage, Tracer

__all__ = [
    "AnalyticExecutor",
    "CostCoefficients",
    "DEFAULT_COEFFS",
    "DEFAULT_INTER_LINK",
    "EventSchedule",
    "FabricSpec",
    "KernelParams",
    "LaunchCost",
    "LaunchGraph",
    "LaunchNode",
    "LaunchRecord",
    "LinkSpec",
    "NodeTable",
    "NumericExecutor",
    "OccupancyInfo",
    "REFERENCE_PARAMS",
    "Session",
    "Stage",
    "StreamSchedule",
    "TimeBreakdown",
    "Topology",
    "Tracer",
    "bidiag_solve_cost",
    "bound_table_stats",
    "brd_cost",
    "check_shard_capacity",
    "clear_bound_tables",
    "comm_cost",
    "fleet_weights",
    "panel_cost",
    "param_grid",
    "partition_graph",
    "predict",
    "predict_multi_gpu",
    "predict_out_of_core",
    "price_partitioned",
    "price_table",
    "rewrite_out_of_core",
    "schedule_streams",
    "shard_rows",
    "shard_rows_weighted",
    "simulate_events",
    "stage1_launch_count",
    "window_capacity_tiles",
    "update_cost",
    "update_occupancy",
    "dump_json",
    "kernel_summary",
    "render_timeline",
    "timeline_rows",
    "warp_utilization",
]
