"""Timeline export: inspect and persist the simulator's launch trace.

The paper's Figure 6 analysis needs per-kernel, per-stage attribution;
this module turns a :class:`~repro.sim.tracing.Tracer` into human-readable
and machine-readable artifacts:

* :func:`render_timeline` - fixed-width table of every launch (kernel,
  stage, grid/block, simulated time, cumulative clock);
* :func:`timeline_rows` - plain dict rows, JSON/CSV-friendly;
* :func:`kernel_summary` - per-kernel aggregate (count, total time, share).
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..report import format_seconds, format_table
from .tracing import Tracer

__all__ = ["timeline_rows", "render_timeline", "kernel_summary", "dump_json"]


def timeline_rows(tracer: Tracer) -> List[Dict[str, object]]:
    """Per-launch dict rows with a cumulative simulated clock."""
    rows: List[Dict[str, object]] = []
    clock = 0.0
    for rec in tracer.records:
        clock += rec.seconds
        rows.append(
            {
                "kernel": rec.kernel,
                "stage": rec.stage,
                "grid": rec.grid,
                "block": rec.block,
                "seconds": rec.seconds,
                "overhead_s": rec.overhead_s,
                "flops": rec.cost.flops,
                "bytes": rec.cost.bytes,
                "clock_s": clock,
            }
        )
    return rows


def render_timeline(tracer: Tracer, limit: int = 50) -> str:
    """ASCII table of the first ``limit`` launches plus a summary line."""
    rows = timeline_rows(tracer)
    body = [
        [
            str(i),
            r["kernel"],
            r["stage"],
            f"{r['grid']}x{r['block']}",
            format_seconds(float(r["seconds"])).strip(),
            format_seconds(float(r["clock_s"])).strip(),
        ]
        for i, r in enumerate(rows[:limit])
    ]
    table = format_table(
        ["#", "kernel", "stage", "grid", "time", "clock"],
        body,
        title=f"simulated timeline ({len(rows)} launches, "
        f"total {format_seconds(tracer.total_seconds).strip()})",
    )
    if len(rows) > limit:
        table += f"\n... {len(rows) - limit} more launches"
    return table


def kernel_summary(tracer: Tracer) -> List[Dict[str, object]]:
    """Per-kernel aggregates sorted by total simulated time."""
    agg: Dict[str, Dict[str, float]] = {}
    for rec in tracer.records:
        entry = agg.setdefault(
            rec.kernel, {"count": 0.0, "seconds": 0.0, "flops": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += rec.seconds
        entry["flops"] += rec.cost.flops
    total = tracer.total_seconds or 1.0
    out = [
        {
            "kernel": kernel,
            "count": int(v["count"]),
            "seconds": v["seconds"],
            "share": v["seconds"] / total,
            "flops": v["flops"],
        }
        for kernel, v in agg.items()
    ]
    out.sort(key=lambda r: -float(r["seconds"]))
    return out


def dump_json(tracer: Tracer) -> str:
    """Serialize the full timeline to a JSON string."""
    return json.dumps(
        {
            "total_seconds": tracer.total_seconds,
            "stage_seconds": tracer.stage_breakdown(),
            "kernels": kernel_summary(tracer),
            "launches": timeline_rows(tracer),
        },
        indent=1,
    )
