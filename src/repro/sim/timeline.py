"""Timeline tools: launch-trace export and multi-stream scheduling.

The paper's Figure 6 analysis needs per-kernel, per-stage attribution;
this module turns a :class:`~repro.sim.tracing.Tracer` into human-readable
and machine-readable artifacts:

* :func:`render_timeline` - fixed-width table of every launch (kernel,
  stage, grid/block, simulated time, cumulative clock);
* :func:`timeline_rows` - plain dict rows, JSON/CSV-friendly;
* :func:`kernel_summary` - per-kernel aggregate (count, total time, share).

It also hosts the multi-stream pricing of a
:class:`~repro.sim.graph.LaunchGraph`: :func:`schedule_streams` runs a
greedy critical-path list scheduler over the graph's dependency DAG,
modelling lookahead execution where the panel chain occupies one stream
while the split trailing-update remainders overlap on the others (the
scenario behind ``Solver.predict(..., streams=k)``).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..report import format_seconds, format_table
from .graph import LaunchGraph
from .table import stream_costs
from .tracing import Stage, Tracer

__all__ = [
    "StreamSchedule",
    "schedule_streams",
    "timeline_rows",
    "render_timeline",
    "kernel_summary",
    "dump_json",
]


def timeline_rows(tracer: Tracer) -> List[Dict[str, object]]:
    """Per-launch dict rows with a cumulative simulated clock."""
    rows: List[Dict[str, object]] = []
    clock = 0.0
    for rec in tracer.records:
        clock += rec.seconds
        rows.append(
            {
                "kernel": rec.kernel,
                "stage": rec.stage,
                "grid": rec.grid,
                "block": rec.block,
                "seconds": rec.seconds,
                "overhead_s": rec.overhead_s,
                "flops": rec.cost.flops,
                "bytes": rec.cost.bytes,
                "clock_s": clock,
            }
        )
    return rows


def render_timeline(tracer: Tracer, limit: int = 50) -> str:
    """ASCII table of the first ``limit`` launches plus a summary line."""
    rows = timeline_rows(tracer)
    body = [
        [
            str(i),
            r["kernel"],
            r["stage"],
            f"{r['grid']}x{r['block']}",
            format_seconds(float(r["seconds"])).strip(),
            format_seconds(float(r["clock_s"])).strip(),
        ]
        for i, r in enumerate(rows[:limit])
    ]
    table = format_table(
        ["#", "kernel", "stage", "grid", "time", "clock"],
        body,
        title=f"simulated timeline ({len(rows)} launches, "
        f"total {format_seconds(tracer.total_seconds).strip()})",
    )
    if len(rows) > limit:
        table += f"\n... {len(rows) - limit} more launches"
    return table


def kernel_summary(tracer: Tracer) -> List[Dict[str, object]]:
    """Per-kernel aggregates sorted by total simulated time."""
    agg: Dict[str, Dict[str, float]] = {}
    for rec in tracer.records:
        entry = agg.setdefault(
            rec.kernel, {"count": 0.0, "seconds": 0.0, "flops": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += rec.seconds
        entry["flops"] += rec.cost.flops
    total = tracer.total_seconds or 1.0
    out = [
        {
            "kernel": kernel,
            "count": int(v["count"]),
            "seconds": v["seconds"],
            "share": v["seconds"] / total,
            "flops": v["flops"],
        }
        for kernel, v in agg.items()
    ]
    out.sort(key=lambda r: -float(r["seconds"]))
    return out


@dataclass
class StreamSchedule:
    """Result of scheduling a launch graph across streams (and devices).

    ``makespan_s`` is the overlapped end-to-end time (what ``total_s``
    reports); ``serial_s`` is the same graph executed on one stream, so
    ``speedup`` isolates the overlap benefit of the *same* launch set.
    ``stage_seconds`` keeps the serial per-stage attribution for Figure 6
    style reporting.

    For partitioned graphs (``ngpu > 1``) the lanes are per-device
    stream pools: lanes ``[d * streams, (d + 1) * streams)`` are device
    ``d``'s compute streams and lane ``ngpu * streams + d`` is its link
    engine (comm nodes only); ``stream_busy_s`` covers every lane in
    that order.  Out-of-core graphs append one more lane per device -
    its host-link (PCIe) copy engine, which the ``h2d_tile`` /
    ``d2h_tile`` transfer nodes occupy - so prefetch overlaps compute
    but transfers serialize on the host link.
    """

    n: int
    streams: int
    makespan_s: float
    serial_s: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    launches: Dict[str, int] = field(default_factory=dict)
    stream_busy_s: List[float] = field(default_factory=list)
    ngpu: int = 1

    @property
    def total_s(self) -> float:
        """Overlapped end-to-end simulated seconds."""
        return self.makespan_s

    @property
    def speedup(self) -> float:
        """Serial time of the same launches over the overlapped makespan."""
        return self.serial_s / self.makespan_s if self.makespan_s > 0 else 1.0

    @property
    def comm_s(self) -> float:
        """Serial device-to-device communication time in the launch set."""
        return self.stage_seconds.get(Stage.COMM, 0.0)

    @property
    def io_s(self) -> float:
        """Serial host<->device transfer time in the launch set."""
        return self.stage_seconds.get(Stage.TRANSFER, 0.0)

    @property
    def launch_total(self) -> int:
        """Total kernel launches in the scheduled graph."""
        return sum(self.launches.values())


def schedule_streams(
    graph: LaunchGraph,
    config,
    storage,
    streams: int,
    cache: Optional[dict] = None,
) -> StreamSchedule:
    """Greedy critical-path schedule of ``graph`` onto ``streams`` streams.

    Classic list scheduling: each node's priority is its longest
    downstream path (critical path including itself); among ready nodes
    the highest priority is placed on the lane where it can start
    earliest (``start = max(lane available, deps finished)``).  The
    chosen placement is written back to each node's ``stream`` field for
    inspection (a later call overwrites it).  With ``streams=1`` this
    degenerates to the serial sum the
    :class:`~repro.sim.graph.AnalyticExecutor` charges.

    Partitioned graphs (``graph.ngpu > 1``) schedule device-aware: every
    device owns its own pool of ``streams`` compute lanes plus one link
    lane, compute nodes may only run on their device's pool, and comm
    nodes occupy their device's link - so communication overlaps remote
    compute but serializes on the interconnect, and the makespan is a
    true multi-device critical path.
    """
    if streams < 1:
        raise ValueError(f"need at least one stream, got {streams}")
    if graph.counted:
        raise ValueError(
            "counted graphs fold launch runs and cannot be list-scheduled; "
            "emit with counted=False"
        )
    nodes = graph.nodes
    nnodes = len(nodes)
    ngpu = graph.ngpu

    # whole-array pricing over the struct-of-arrays table (float-identical
    # to the per-node loop; see repro.sim.table); the greedy placement
    # below stays scalar - it is inherently sequential and cheap
    durs_arr, stage_seconds, launches, serial_s = stream_costs(
        graph.table(), config, storage, cache
    )
    durs = durs_arr.tolist()

    # longest path to a sink (node list order is topological)
    children: List[List[int]] = [[] for _ in range(nnodes)]
    indeg = [0] * nnodes
    for i, node in enumerate(nodes):
        indeg[i] = len(node.deps)
        for d in node.deps:
            children[d].append(i)
    prio = [0.0] * nnodes
    for i in range(nnodes - 1, -1, -1):
        down = max((prio[c] for c in children[i]), default=0.0)
        prio[i] = durs[i] + down

    # lane layout: per-device stream pools, then one link lane per device
    # (partitioned graphs), then one host-link lane per device
    # (out-of-core graphs)
    comm_lanes = ngpu if ngpu > 1 else 0
    xfer_lanes = ngpu if graph.out_of_core else 0
    nlanes = ngpu * streams + comm_lanes + xfer_lanes

    def lanes_for(node) -> range:
        dev = node.device or 0
        if node.stage == Stage.TRANSFER and xfer_lanes:
            host_lane = ngpu * streams + comm_lanes + dev
            return range(host_lane, host_lane + 1)
        if ngpu > 1 and node.stage == Stage.COMM:
            link_lane = ngpu * streams + dev
            return range(link_lane, link_lane + 1)
        return range(dev * streams, (dev + 1) * streams)

    ready = [(-prio[i], i) for i in range(nnodes) if indeg[i] == 0]
    heapq.heapify(ready)
    avail = [0.0] * nlanes
    busy = [0.0] * nlanes
    finish = [0.0] * nnodes
    while ready:
        _, i = heapq.heappop(ready)
        dep_ready = max((finish[d] for d in nodes[i].deps), default=0.0)
        s = min(lanes_for(nodes[i]), key=lambda q: max(avail[q], dep_ready))
        start = max(avail[s], dep_ready)
        finish[i] = start + durs[i]
        avail[s] = finish[i]
        busy[s] += durs[i]
        nodes[i].stream = s  # record the placement back onto the IR
        for c in children[i]:
            indeg[c] -= 1
            if indeg[c] == 0:
                heapq.heappush(ready, (-prio[c], c))

    return StreamSchedule(
        n=graph.n,
        streams=streams,
        makespan_s=max(finish) if nnodes else 0.0,
        serial_s=serial_s,
        stage_seconds=stage_seconds,
        launches=launches,
        stream_busy_s=busy,
        ngpu=ngpu,
    )


def dump_json(tracer: Tracer) -> str:
    """Serialize the full timeline to a JSON string."""
    return json.dumps(
        {
            "total_seconds": tracer.total_seconds,
            "stage_seconds": tracer.stage_breakdown(),
            "kernels": kernel_summary(tracer),
            "launches": timeline_rows(tracer),
        },
        indent=1,
    )
