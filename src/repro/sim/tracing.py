"""Launch tracing: the simulator's timeline and stage accounting.

Every kernel launch performed through a :class:`~repro.sim.session.Session`
produces a :class:`LaunchRecord`.  The :class:`Tracer` aggregates them into
per-stage totals - exactly the attribution Figure 6 of the paper reports
(panel factorization, trailing submatrix update, reduction to bidiagonal,
reduction to diagonal).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .costmodel import LaunchCost

__all__ = ["Stage", "LaunchRecord", "Tracer"]


class Stage:
    """Canonical stage tags used for timeline attribution."""

    PANEL = "panel"  # GEQRT / TSQRT / FTSQRT
    UPDATE = "update"  # UNMQR / TSMQR / FTSMQR
    BRD = "brd"  # band -> bidiagonal bulge chasing
    SOLVE = "solve"  # bidiagonal -> singular values (CPU)
    COMM = "comm"  # device <-> device traffic (partitioned graphs)
    TRANSFER = "transfer"  # host <-> device traffic

    ALL = (PANEL, UPDATE, BRD, SOLVE, COMM, TRANSFER)


@dataclass(frozen=True)
class LaunchRecord:
    """One simulated kernel launch."""

    kernel: str  # e.g. "geqrt", "ftsmqr"
    stage: str  # one of Stage.ALL
    cost: LaunchCost  # kernel execution cost (excl. overhead)
    overhead_s: float  # fixed launch overhead charged
    grid: int = 1  # workgroups launched
    block: int = 1  # threads per workgroup

    @property
    def seconds(self) -> float:
        """Total simulated wall time of this launch."""
        return self.cost.seconds + self.overhead_s


@dataclass
class Tracer:
    """Accumulates launch records and per-stage totals."""

    keep_records: bool = True
    records: List[LaunchRecord] = field(default_factory=list)
    _stage_seconds: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _stage_overhead: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _kernel_counts: Counter = field(default_factory=Counter)
    _flops: float = 0.0
    _bytes: float = 0.0

    # ------------------------------------------------------------------ #
    def record(self, rec: LaunchRecord) -> None:
        """Add one launch to the timeline."""
        if self.keep_records:
            self.records.append(rec)
        self._stage_seconds[rec.stage] += rec.cost.seconds
        self._stage_overhead[rec.stage] += rec.overhead_s
        self._kernel_counts[rec.kernel] += 1
        self._flops += rec.cost.flops
        self._bytes += rec.cost.bytes

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #
    @property
    def total_seconds(self) -> float:
        """Simulated end-to-end time (kernel time + launch overheads)."""
        return sum(self._stage_seconds.values()) + sum(
            self._stage_overhead.values()
        )

    def stage_seconds(self, stage: str, include_overhead: bool = True) -> float:
        """Simulated time attributed to one stage."""
        t = self._stage_seconds.get(stage, 0.0)
        if include_overhead:
            t += self._stage_overhead.get(stage, 0.0)
        return t

    def stage_breakdown(self) -> Dict[str, float]:
        """Stage -> seconds map over all recorded stages."""
        return {
            stage: self.stage_seconds(stage)
            for stage in Stage.ALL
            if self.stage_seconds(stage) > 0.0
        }

    def launch_count(self, kernel: Optional[str] = None) -> int:
        """Number of launches, optionally filtered by kernel name."""
        if kernel is None:
            return sum(self._kernel_counts.values())
        return self._kernel_counts.get(kernel, 0)

    def kernel_counts(self) -> Dict[str, int]:
        """Kernel name -> launch count."""
        return dict(self._kernel_counts)

    @property
    def total_flops(self) -> float:
        """Accumulated floating-point operations across all launches."""
        return self._flops

    @property
    def total_bytes(self) -> float:
        """Accumulated global-memory traffic across all launches."""
        return self._bytes

    def reset(self) -> None:
        """Clear the timeline."""
        self.records.clear()
        self._stage_seconds.clear()
        self._stage_overhead.clear()
        self._kernel_counts.clear()
        self._flops = 0.0
        self._bytes = 0.0
