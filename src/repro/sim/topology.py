"""Fleet topology specification: which devices, where, over which links.

The execution axes grew one at a time - ``ngpu=`` (PR 3), ``nodes=`` /
``fabric_gbs=`` (PR 8), ``link_gbs=`` - and all of them assume identical
devices.  Real fleets mix H100/A100/MI250/PVC parts whose specs already
live in :mod:`repro.backends.device`; :class:`Topology` is the one frozen
value that names such a fleet:

>>> from repro import Topology
>>> Topology(devices=("h100", "h100", "a100", "a100"))
Topology(2 x h100 + 2 x a100, nodes=1)
>>> Topology.uniform("h100", 4, nodes=2).is_uniform
True

``Solver.predict``, ``Solver.tune``, serving admission and
``partition_graph`` all accept ``topology=``.  The legacy spellings
(``ngpu=``, ``nodes=``, ``fabric_gbs=``, ``link_gbs=``) remain as thin
shims describing a uniform fleet of the handle's backend; passing both
spellings raises a validation error naming the conflicting axes.  The
core invariant (pinned by ``tests/test_partition.py``): a **uniform**
topology of the handle's own device routes through exactly the legacy
code path, so ``Topology.uniform(dev, g, nodes=m)`` produces graphs and
prices byte-identical to ``ngpu=g, nodes=m``.  Heterogeneous fleets take
the cost-weighted path instead (see
:func:`repro.sim.partition.shard_rows_weighted`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import InvalidParamsError

__all__ = ["Topology"]

#: The legacy Solver axes a ``topology=`` argument replaces; used to name
#: conflicting axes in validation errors.
_LEGACY_AXES = ("ngpu", "nodes", "fabric_gbs", "link_gbs")


@dataclass(frozen=True)
class Topology:
    """Frozen description of a (possibly heterogeneous) device fleet.

    ``devices`` names every device rank in global order (rank ``d`` lives
    on node ``d // per_node``); names resolve through the Table 2 device
    registry, so aliases (``"nvidia-h100"``) canonicalize.  ``nodes``
    splits the ranks into equal-size hosts; ``link_gbs`` / ``fabric_gbs``
    override the intra-node link and inter-node fabric bandwidths exactly
    like the legacy ``Solver.predict`` keywords.  Hashable by value, so a
    topology can key the bound-structure and tune memos.
    """

    devices: Tuple[str, ...]
    nodes: int = 1
    fabric_gbs: Optional[float] = None
    link_gbs: Optional[float] = None

    def __post_init__(self) -> None:
        """Canonicalize device names and validate the axes."""
        from ..backends.device import get_device

        if isinstance(self.devices, str):
            raise InvalidParamsError(
                "devices must be a sequence of device names, got a bare "
                f"string {self.devices!r} (did you mean "
                f"Topology.uniform({self.devices!r}, ngpu)?)"
            )
        names = tuple(get_device(d).name for d in self.devices)
        if not names:
            raise InvalidParamsError("a topology needs at least one device")
        object.__setattr__(self, "devices", names)
        if self.nodes < 1:
            raise InvalidParamsError(
                f"nodes must be a positive node count, got {self.nodes}"
            )
        if len(names) % self.nodes != 0:
            raise InvalidParamsError(
                f"{len(names)} devices do not split evenly over "
                f"{self.nodes} nodes"
            )
        if self.link_gbs is not None and self.link_gbs <= 0:
            raise InvalidParamsError(
                f"link_gbs must be a positive bandwidth, got {self.link_gbs}"
            )
        if self.fabric_gbs is not None:
            if self.nodes < 2:
                raise InvalidParamsError(
                    "fabric_gbs sets the inter-node fabric bandwidth and "
                    "requires nodes >= 2"
                )
            if self.fabric_gbs <= 0:
                raise InvalidParamsError(
                    f"fabric_gbs must be a positive bandwidth, "
                    f"got {self.fabric_gbs}"
                )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(
        cls,
        device: str,
        ngpu: int,
        nodes: int = 1,
        fabric_gbs: Optional[float] = None,
        link_gbs: Optional[float] = None,
    ) -> "Topology":
        """A fleet of ``ngpu`` identical devices spread over ``nodes``.

        The topology spelling of the legacy ``ngpu=`` / ``nodes=``
        keywords: ``ngpu`` is the total device count (``nodes *
        per_node``), matching ``Solver.predict(n, ngpu=g, nodes=m)``
        which shards over ``m * g`` ranks.
        """
        if ngpu < 1:
            raise InvalidParamsError(
                f"ngpu must be a positive device count, got {ngpu}"
            )
        return cls(
            devices=(device,) * int(ngpu),
            nodes=nodes,
            fabric_gbs=fabric_gbs,
            link_gbs=link_gbs,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def ngpu(self) -> int:
        """Total device count across every node."""
        return len(self.devices)

    @property
    def per_node(self) -> int:
        """Devices per node (ranks split evenly; validated)."""
        return len(self.devices) // self.nodes

    @property
    def is_uniform(self) -> bool:
        """True when every rank is the same device type."""
        return len(set(self.devices)) == 1

    @property
    def device(self) -> str:
        """The single device name of a uniform fleet."""
        if not self.is_uniform:
            raise InvalidParamsError(
                f"topology mixes device types {sorted(set(self.devices))}; "
                "a single .device name is only defined for uniform fleets"
            )
        return self.devices[0]

    def specs(self) -> Tuple[object, ...]:
        """Per-rank :class:`~repro.backends.device.DeviceSpec` objects."""
        from ..backends.device import get_device

        return tuple(get_device(d) for d in self.devices)

    def counts(self) -> Tuple[Tuple[str, int], ...]:
        """``(device, count)`` pairs in first-appearance order."""
        order: list = []
        tally: dict = {}
        for d in self.devices:
            if d not in tally:
                order.append(d)
                tally[d] = 0
            tally[d] += 1
        return tuple((d, tally[d]) for d in order)

    def node_of(self, rank: int) -> int:
        """The node hosting a global device rank."""
        if not 0 <= rank < self.ngpu:
            raise InvalidParamsError(
                f"rank {rank} outside this topology's {self.ngpu} devices"
            )
        return rank // self.per_node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Compact fleet summary, e.g. ``Topology(2 x h100 + 2 x a100)``."""
        parts = " + ".join(f"{c} x {d}" for d, c in self.counts())
        extras = ""
        if self.link_gbs is not None:
            extras += f", link_gbs={self.link_gbs}"
        if self.fabric_gbs is not None:
            extras += f", fabric_gbs={self.fabric_gbs}"
        return f"Topology({parts}, nodes={self.nodes}{extras})"


def conflicting_axes(
    topology: Optional[Topology],
    ngpu: Optional[int] = None,
    nodes: Optional[int] = None,
    fabric_gbs: Optional[float] = None,
    link_gbs: Optional[float] = None,
) -> Tuple[str, ...]:
    """The legacy axes that were passed alongside a ``topology=``.

    Helper for the one validation rule every ``topology=`` acceptor
    shares: the two spellings are mutually exclusive, and the error must
    name the conflicting axes.  Pass each legacy axis only when it
    differs from its default; returns the conflicting names (empty when
    the call is valid).
    """
    if topology is None:
        return ()
    flags = (ngpu is not None, nodes is not None,
             fabric_gbs is not None, link_gbs is not None)
    return tuple(
        axis for axis, flagged in zip(_LEGACY_AXES, flags) if flagged
    )


def require_no_conflicts(topology: Optional[Topology], **legacy) -> None:
    """Raise when both ``topology=`` and legacy axes are spelled out.

    ``legacy`` maps axis name to the *non-default* value passed (omit or
    pass ``None`` for axes left at their defaults).  The raised
    :class:`~repro.errors.InvalidParamsError` names every conflicting
    axis, per the API contract.
    """
    conflicts = conflicting_axes(topology, **legacy)
    if conflicts:
        raise InvalidParamsError(
            f"topology= already fixes the fleet axes; also passing "
            f"{', '.join(sorted(conflicts))} is ambiguous - drop the "
            f"legacy spelling(s) or the topology"
        )

