"""Frozen solve configuration: everything a solve needs, resolved once.

The legacy entry points each re-resolved the backend, precision,
hyperparameters and cost coefficients on every call.  :class:`SolveConfig`
is the single resolution point behind :class:`repro.Solver`: it validates
the full configuration at construction time (unknown backends, unsupported
backend/precision pairs, invalid hyperparameters and stage-3 method names
all fail fast, before any matrix is touched) and is immutable afterwards,
so a handle can be shared and reused safely.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from .backends.backend import Backend, BackendLike, resolve_backend
from .errors import InvalidParamsError
from .precision import Precision, PrecisionLike
from .sim.costmodel import (
    DEFAULT_COEFFS,
    DEFAULT_INTER_LINK,
    CostCoefficients,
    FabricSpec,
    LinkSpec,
)
from .sim.params import KernelParams
from .sim.session import Session

__all__ = ["METHODS", "STAGE3_METHODS", "SolveConfig"]

#: Valid stage-3 bidiagonal solver names (see :func:`repro.core.svdvals_bidiag`).
STAGE3_METHODS = ("auto", "gk", "bisect", "lapack")

#: Valid solver algorithms: the two-stage QR pipeline (the paper's
#: contribution) or the one-sided Jacobi cross-check.
METHODS = ("qr", "jacobi")


@dataclass(frozen=True)
class SolveConfig:
    """Immutable, fully-resolved configuration of one :class:`repro.Solver`.

    ``precision=None`` keeps the historical per-input inference: the
    storage precision is derived from each input's dtype via
    :meth:`repro.Precision.from_dtype` (falling back to FP64) and checked
    against the backend at solve time.
    """

    backend: Backend
    precision: Optional[Precision]
    params: KernelParams
    coeffs: CostCoefficients
    stage3: str = "auto"
    fused: bool = True
    check_finite: bool = True
    rescale: bool = True
    method: str = "qr"
    jacobi_tol: Optional[float] = None
    jacobi_max_sweeps: int = 60
    #: Extra sketch columns of the randomized low-rank workload: the
    #: Gaussian sample is ``rank + oversample`` columns wide (clamped to
    #: the matrix), trading a slightly larger small solve for sharper
    #: singular-value estimates (HMT's p = 5-10 guidance).
    oversample: int = 8
    #: Peer interconnect override for multi-GPU prediction; ``None``
    #: uses the backend's default link (NVLink / Infinity Fabric / ...).
    link: Optional[LinkSpec] = None
    #: Two-tier cluster interconnect override for multi-node prediction;
    #: ``None`` composes the resolved intra-node link with the default
    #: inter-node fabric (:data:`~repro.sim.costmodel.DEFAULT_INTER_LINK`).
    fabric: Optional[FabricSpec] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def resolve(
        cls,
        backend: BackendLike = "h100",
        precision: Optional[PrecisionLike] = None,
        params: Optional[KernelParams] = None,
        coeffs: Optional[CostCoefficients] = None,
        stage3: str = "auto",
        fused: bool = True,
        check_finite: bool = True,
        rescale: bool = True,
        method: str = "qr",
        jacobi_tol: Optional[float] = None,
        jacobi_max_sweeps: int = 60,
        oversample: int = 8,
        link: Optional[LinkSpec] = None,
        fabric: Optional[FabricSpec] = None,
    ) -> "SolveConfig":
        """Resolve and validate every axis of the configuration up front.

        Raises
        ------
        UnsupportedBackendError
            Unknown backend name.
        UnsupportedPrecisionError
            Precision not supported by the backend (paper Figure 5 gaps).
        InvalidParamsError
            Invalid hyperparameters or unknown ``stage3`` / ``method``.
        """
        be = resolve_backend(backend)
        prec = be.check_precision(precision) if precision is not None else None
        if params is None:
            params = KernelParams()
        elif not isinstance(params, KernelParams):
            raise InvalidParamsError(
                f"params must be a KernelParams, got {type(params).__name__}"
            )
        if coeffs is None:
            coeffs = DEFAULT_COEFFS
        if stage3 not in STAGE3_METHODS:
            raise InvalidParamsError(
                f"unknown stage3 method {stage3!r}; expected one of "
                f"{STAGE3_METHODS}"
            )
        if method not in METHODS:
            raise InvalidParamsError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if jacobi_max_sweeps < 1:
            raise InvalidParamsError(
                f"jacobi_max_sweeps must be positive, got {jacobi_max_sweeps}"
            )
        if oversample < 1:
            raise InvalidParamsError(
                f"oversample must be positive, got oversample={oversample}"
            )
        if link is not None and not isinstance(link, LinkSpec):
            raise InvalidParamsError(
                f"link must be a LinkSpec, got {type(link).__name__}"
            )
        if link is not None and (
            link.bandwidth_gbs <= 0 or link.latency_us < 0
        ):
            raise InvalidParamsError(
                f"link needs positive bandwidth and non-negative latency, "
                f"got {link}"
            )
        if fabric is not None:
            if not isinstance(fabric, FabricSpec):
                raise InvalidParamsError(
                    f"fabric must be a FabricSpec, got {type(fabric).__name__}"
                )
            for tier in (fabric.intra, fabric.inter):
                if not isinstance(tier, LinkSpec) or (
                    tier.bandwidth_gbs <= 0 or tier.latency_us < 0
                ):
                    raise InvalidParamsError(
                        f"fabric tiers need positive bandwidth and "
                        f"non-negative latency, got {fabric}"
                    )
        return cls(
            backend=be,
            precision=prec,
            params=params,
            coeffs=coeffs,
            stage3=stage3,
            fused=bool(fused),
            check_finite=bool(check_finite),
            rescale=bool(rescale),
            method=method,
            jacobi_tol=jacobi_tol,
            jacobi_max_sweeps=int(jacobi_max_sweeps),
            oversample=int(oversample),
            link=link,
            fabric=fabric,
        )

    # ------------------------------------------------------------------ #
    def with_(self, **kwargs) -> "SolveConfig":
        """Copy with selected axes replaced and re-validated."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(kwargs)
        return type(self).resolve(**current)

    def storage_for(self, dtype) -> Precision:
        """Concrete storage precision for an input dtype.

        The configured precision wins when set; otherwise it is inferred
        from the dtype and validated against the backend.
        """
        if self.precision is not None:
            return self.precision
        return self.backend.check_precision(Precision.from_dtype(dtype))

    def require_precision(self, what: str = "predict") -> Precision:
        """The configured precision, or an error naming the operation.

        Prediction has no input matrix to infer a dtype from, so the
        handle must have been constructed with an explicit precision.
        """
        if self.precision is None:
            raise InvalidParamsError(
                f"{what} requires an explicit precision; construct the "
                "Solver with precision='fp16'/'fp32'/'fp64'"
            )
        return self.precision

    def link_spec(self, link_gbs: Optional[float] = None) -> LinkSpec:
        """The peer interconnect multi-GPU prediction prices against.

        The configured ``link`` axis wins over the backend's default
        link; a ``link_gbs`` bandwidth override (the historical scaling
        knob) wins over both.
        """
        link = self.link if self.link is not None else self.backend.link
        if link_gbs is not None:
            if link_gbs <= 0:
                raise InvalidParamsError(
                    f"link_gbs must be a positive bandwidth, got {link_gbs}"
                )
            link = link.with_(bandwidth_gbs=float(link_gbs))
        return link

    def fabric_spec(
        self,
        link_gbs: Optional[float] = None,
        fabric_gbs: Optional[float] = None,
    ) -> FabricSpec:
        """The two-tier cluster interconnect multi-node prediction uses.

        The intra tier resolves exactly like :meth:`link_spec` (the
        configured ``fabric.intra`` winning over the ``link`` axis); the
        inter tier is the configured ``fabric.inter`` or the default
        inter-node fabric, with a ``fabric_gbs`` bandwidth override
        winning over both.
        """
        if self.fabric is not None:
            intra, inter = self.fabric.intra, self.fabric.inter
        else:
            intra, inter = self.link_spec(), DEFAULT_INTER_LINK
        if link_gbs is not None:
            if link_gbs <= 0:
                raise InvalidParamsError(
                    f"link_gbs must be a positive bandwidth, got {link_gbs}"
                )
            intra = intra.with_(bandwidth_gbs=float(link_gbs))
        if fabric_gbs is not None:
            if fabric_gbs <= 0:
                raise InvalidParamsError(
                    f"fabric_gbs must be a positive bandwidth, "
                    f"got {fabric_gbs}"
                )
            inter = inter.with_(bandwidth_gbs=float(fabric_gbs))
        return FabricSpec(intra=intra, inter=inter)

    def session(self, storage: Precision, cost_cache: Optional[dict] = None) -> Session:
        """Fresh tracing session bound to this configuration.

        ``cost_cache`` (a plan-owned dict) lets repeated same-shape solves
        skip re-pricing identical kernel launches.
        """
        return Session(
            backend=self.backend,
            storage=storage,
            compute=self.backend.compute_precision(storage),
            params=self.params,
            coeffs=self.coeffs,
            cost_cache=cost_cache,
        )
